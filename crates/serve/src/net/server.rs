//! The listener side of the wire front-end: accept loops, and one
//! reader + one responder thread per connection feeding the in-process
//! [`Server`](crate::Server)'s micro-batcher.

use std::io::Write;
use std::net::{SocketAddr, TcpListener};
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use pulp_hd_core::backend::Verdict;

use crate::{ServeError, Server, ServerStats, Ticket, TrySubmitError};

use super::proto::{self, ErrorCode, FrameHeader, HealthReport, WireError, WireFault};
use super::transport::WireStream;
use super::{NetConfig, NetError};

/// How often blocked accept/read loops wake to re-check the draining
/// flag and the connection-dead flag.
const POLL_TICK: Duration = Duration::from_millis(5);

/// An address to serve on.
#[derive(Debug, Clone)]
pub enum Endpoint {
    /// A TCP listen address, e.g. `"127.0.0.1:0"` (`0` picks a free
    /// port; read it back from [`NetServer::tcp_addr`]).
    Tcp(String),
    /// A Unix-domain socket path. A stale socket file at the path (one
    /// left by a dead server) is removed before binding; a regular file
    /// or a socket a live server answers on makes the bind fail with
    /// `AddrInUse`. The socket file is removed again on shutdown.
    Uds(PathBuf),
}

/// An address the server actually bound.
#[derive(Debug, Clone)]
pub enum BoundEndpoint {
    /// Bound TCP address with the OS-assigned port resolved.
    Tcp(SocketAddr),
    /// Bound Unix-domain socket path.
    Uds(PathBuf),
}

/// Wire-side counters (the transport analog of [`ServerStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Connections accepted.
    pub accepted: u64,
    /// Connections refused (connection cap, or arriving mid-drain).
    pub refused: u64,
    /// Connections currently open.
    pub active: u64,
    /// Request frames fully read.
    pub frames: u64,
    /// Response frames fully written.
    pub responses: u64,
    /// Connections killed for an undecodable frame.
    pub malformed: u64,
    /// Connections killed for stalling mid-frame past
    /// [`NetConfig::read_timeout`] (slow-loris defense).
    pub stalled_kills: u64,
    /// Requests shed with [`ErrorCode::Overloaded`] at the wire layer
    /// (per-connection in-flight window or batcher queue full).
    pub wire_overloaded: u64,
}

/// State shared by the accept loops and every connection.
#[derive(Debug, Default)]
struct NetShared {
    draining: AtomicBool,
    active: AtomicUsize,
    accepted: AtomicU64,
    refused: AtomicU64,
    frames: AtomicU64,
    responses: AtomicU64,
    malformed: AtomicU64,
    stalled: AtomicU64,
    overloaded: AtomicU64,
}

impl NetShared {
    fn snapshot(&self) -> NetStats {
        NetStats {
            accepted: self.accepted.load(Ordering::Relaxed),
            refused: self.refused.load(Ordering::Relaxed),
            // ORDERING: `active` is the drain handshake's connection
            // count (SeqCst everywhere else: the accept loop's
            // check-then-increment must be totally ordered against
            // shutdown's drain-then-wait). This read used to be Relaxed
            // — a snapshot taken after `shutdown()` returned could then
            // lag the guards' SeqCst decrements and report a phantom
            // active connection; reading SeqCst keeps the snapshot
            // inside the same total order the handshake relies on.
            active: self.active.load(Ordering::SeqCst) as u64,
            frames: self.frames.load(Ordering::Relaxed),
            responses: self.responses.load(Ordering::Relaxed),
            malformed: self.malformed.load(Ordering::Relaxed),
            stalled_kills: self.stalled.load(Ordering::Relaxed),
            wire_overloaded: self.overloaded.load(Ordering::Relaxed),
        }
    }
}

/// A running wire front-end around an in-process [`Server`].
///
/// Dropping it performs the same graceful drain as
/// [`shutdown`](Self::shutdown): new connections are refused, every
/// accepted request is answered, connections wind down, then the inner
/// server itself drains.
#[derive(Debug)]
pub struct NetServer {
    server: Option<Arc<Server>>,
    shared: Arc<NetShared>,
    accepts: Vec<JoinHandle<()>>,
    bound: Vec<BoundEndpoint>,
    uds_paths: Vec<PathBuf>,
    final_stats: Option<ServerStats>,
}

enum Listener {
    Tcp(TcpListener),
    Uds(UnixListener),
}

impl Listener {
    fn accept(&self) -> std::io::Result<Box<dyn WireStream>> {
        match self {
            Self::Tcp(l) => {
                let (stream, _) = l.accept()?;
                stream.set_nodelay(true)?;
                Ok(Box::new(stream))
            }
            Self::Uds(l) => {
                let (stream, _) = l.accept()?;
                Ok(Box::new(stream))
            }
        }
    }
}

impl NetServer {
    /// Puts `server` on the wire at every endpoint in `endpoints`.
    ///
    /// Takes ownership of the in-process server: its lifecycle is now
    /// the net server's ([`shutdown`](Self::shutdown) drains the wire
    /// side first, then the batcher). Telemetry stays reachable through
    /// [`server_stats`](Self::server_stats) and the wire `Stats`
    /// command.
    ///
    /// # Errors
    ///
    /// [`NetError::Config`] for an invalid [`NetConfig`] or empty
    /// `endpoints`, [`NetError::Io`] if an endpoint cannot be bound.
    pub fn spawn(
        server: Server,
        endpoints: &[Endpoint],
        config: NetConfig,
    ) -> Result<Self, NetError> {
        config.validate()?;
        if endpoints.is_empty() {
            return Err(NetError::Config("at least one endpoint required".into()));
        }
        let mut listeners = Vec::with_capacity(endpoints.len());
        let mut bound = Vec::with_capacity(endpoints.len());
        let mut uds_paths = Vec::new();
        for endpoint in endpoints {
            match endpoint {
                Endpoint::Tcp(addr) => {
                    let listener = TcpListener::bind(addr.as_str())?;
                    bound.push(BoundEndpoint::Tcp(listener.local_addr()?));
                    listeners.push(Listener::Tcp(listener));
                }
                Endpoint::Uds(path) => {
                    unlink_stale_uds(path)?;
                    let listener = UnixListener::bind(path)?;
                    bound.push(BoundEndpoint::Uds(path.clone()));
                    uds_paths.push(path.clone());
                    listeners.push(Listener::Uds(listener));
                }
            }
        }
        let server = Arc::new(server);
        let shared = Arc::new(NetShared::default());
        let mut accepts = Vec::with_capacity(listeners.len());
        for listener in listeners {
            let server = Arc::clone(&server);
            let shared = Arc::clone(&shared);
            let config = config.clone();
            accepts.push(
                std::thread::Builder::new()
                    .name("pulp-hd-net-accept".into())
                    .spawn(move || accept_loop(&listener, &server, &shared, &config))
                    .map_err(|e| NetError::Config(format!("cannot spawn accept thread: {e}")))?,
            );
        }
        Ok(Self {
            server: Some(server),
            shared,
            accepts,
            bound,
            uds_paths,
            final_stats: None,
        })
    }

    /// The addresses actually bound, in `endpoints` order.
    #[must_use]
    pub fn bound(&self) -> &[BoundEndpoint] {
        &self.bound
    }

    /// The first bound TCP address, if any (the port is resolved, so
    /// `Tcp("127.0.0.1:0")` spawns report the real port here).
    #[must_use]
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.bound.iter().find_map(|b| match b {
            BoundEndpoint::Tcp(addr) => Some(*addr),
            BoundEndpoint::Uds(_) => None,
        })
    }

    /// A snapshot of the inner server's telemetry (what the wire
    /// `Stats` command returns).
    #[must_use]
    pub fn server_stats(&self) -> ServerStats {
        self.server.as_ref().map_or_else(
            || self.final_stats.clone().unwrap_or_else(zero_stats),
            |s| s.stats(),
        )
    }

    /// A snapshot of the wire-side counters.
    #[must_use]
    pub fn net_stats(&self) -> NetStats {
        self.shared.snapshot()
    }

    /// Graceful drain: refuse new connections, answer everything
    /// already accepted, wind down every connection, then shut the
    /// inner server down. Returns the final stats of both layers.
    ///
    /// Connections blocked waiting for traffic see a go-away frame
    /// ([`ErrorCode::Closed`], request id 0) and close. A request with
    /// no deadline whose backend never answers would hold the drain
    /// open — deadlines bound the drain the same way they bound
    /// requests.
    #[must_use = "the final stats are the server's life's work; ignore explicitly if unwanted"]
    pub fn shutdown(mut self) -> (ServerStats, NetStats) {
        self.finish();
        (
            self.final_stats.clone().unwrap_or_else(zero_stats),
            self.shared.snapshot(),
        )
    }

    fn finish(&mut self) {
        if self.server.is_none() {
            return;
        }
        // ORDERING: SeqCst store-then-load against the accept loop's
        // load-then-increment (Dekker-style): either the acceptor sees
        // `draining` and refuses, or this drain sees its `active`
        // increment and waits — weaker orders would allow both sides to
        // miss each other and leak a served connection past shutdown.
        self.shared.draining.store(true, Ordering::SeqCst);
        for handle in self.accepts.drain(..) {
            let _ = handle.join();
        }
        while self.shared.active.load(Ordering::SeqCst) > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        if let Some(arc) = self.server.take() {
            // Every connection (and the accept loops) has exited, so
            // their `Arc` clones are gone or about to be: spin the
            // handful of nanoseconds until ours is the last.
            let mut arc = arc;
            let server = loop {
                match Arc::try_unwrap(arc) {
                    Ok(server) => break server,
                    Err(still_shared) => {
                        arc = still_shared;
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
            };
            self.final_stats = Some(server.shutdown());
        }
        for path in &self.uds_paths {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.finish();
    }
}

/// An all-zero stats value for the post-shutdown edge (final stats are
/// always set by then; this is belt-and-braces, not a real path).
fn zero_stats() -> ServerStats {
    crate::stats::Recorder::new().snapshot(Duration::ZERO)
}

/// Unlinks a *stale* socket file — one left behind by a dead server —
/// before a UDS bind. Anything else at the path stays put: a regular
/// file is never deleted (the bind then fails with `AddrInUse`), and a
/// socket a live server still answers on is a typed error rather than
/// a silent theft.
fn unlink_stale_uds(path: &std::path::Path) -> Result<(), NetError> {
    use std::os::unix::fs::FileTypeExt;
    if let Ok(meta) = std::fs::symlink_metadata(path) {
        if meta.file_type().is_socket() {
            if std::os::unix::net::UnixStream::connect(path).is_ok() {
                return Err(NetError::Io(std::io::Error::new(
                    std::io::ErrorKind::AddrInUse,
                    format!("{} is in use by a live server", path.display()),
                )));
            }
            let _ = std::fs::remove_file(path);
        }
    }
    Ok(())
}

fn accept_loop(
    listener: &Listener,
    server: &Arc<Server>,
    shared: &Arc<NetShared>,
    config: &NetConfig,
) {
    match listener {
        Listener::Tcp(l) => l.set_nonblocking(true).ok(),
        Listener::Uds(l) => l.set_nonblocking(true).ok(),
    };
    loop {
        if shared.draining.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok(stream) => {
                if shared.draining.load(Ordering::SeqCst)
                    || shared.active.load(Ordering::SeqCst) >= config.max_connections
                {
                    // ORDERING: Relaxed telemetry counter; the SeqCst
                    // accesses around it carry the drain handshake.
                    shared.refused.fetch_add(1, Ordering::Relaxed);
                    refuse(&*stream, shared.draining.load(Ordering::SeqCst));
                    continue;
                }
                // Count the connection before its thread exists so the
                // cap can never be raced past, and hand the increment's
                // ownership to the thread (its guard decrements).
                // ORDERING: `active` is SeqCst at every site — the
                // drain handshake in `finish` needs the check-then-
                // increment totally ordered against drain-then-wait.
                // `accepted` is Relaxed telemetry.
                shared.active.fetch_add(1, Ordering::SeqCst);
                shared.accepted.fetch_add(1, Ordering::Relaxed);
                let server = Arc::clone(server);
                let shared_conn = Arc::clone(shared);
                let config = config.clone();
                let spawned = std::thread::Builder::new()
                    .name("pulp-hd-net-conn".into())
                    .spawn(move || connection(stream, &server, &shared_conn, &config));
                if spawned.is_err() {
                    // ORDERING: SeqCst, same `active` protocol as above.
                    shared.active.fetch_sub(1, Ordering::SeqCst);
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                std::thread::sleep(POLL_TICK);
            }
            Err(_) => std::thread::sleep(POLL_TICK),
        }
    }
}

/// Best-effort go-away for a connection that will not be served.
fn refuse(stream: &dyn WireStream, draining: bool) {
    let fault = if draining {
        WireFault::new(ErrorCode::Closed, "server is draining")
    } else {
        WireFault::new(ErrorCode::Overloaded, "connection limit reached")
    };
    let frame = proto::encode_response(0, &proto::Response::Error(fault));
    if let Ok(mut w) = stream.try_clone_stream() {
        let _ = w.write_all(&frame);
        let _ = w.flush();
    }
    stream.shutdown_stream();
}

/// Decrements the active-connection count when the connection thread
/// exits, however it exits.
struct ActiveGuard<'a>(&'a NetShared);

impl Drop for ActiveGuard<'_> {
    fn drop(&mut self) {
        // ORDERING: SeqCst — the release half of the `active` protocol;
        // shutdown's SeqCst wait loop must observe this decrement after
        // the connection's final writes.
        self.0.active.fetch_sub(1, Ordering::SeqCst);
    }
}

/// What the reader hands the responder, in request order.
enum Reply {
    /// A pre-encoded frame (stats, health, immediate errors).
    Frame(Vec<u8>),
    /// A submitted classify: resolve the ticket, then encode.
    Wait {
        id: u64,
        ticket: Ticket,
        deadline: Option<Instant>,
    },
    /// A submitted batch: resolve each accepted ticket in order.
    WaitBatch {
        id: u64,
        items: Vec<Result<Ticket, WireFault>>,
        deadline: Option<Instant>,
    },
}

fn connection(
    stream: Box<dyn WireStream>,
    server: &Arc<Server>,
    shared: &Arc<NetShared>,
    config: &NetConfig,
) {
    let _guard = ActiveGuard(shared);
    let Ok(writer) = stream.try_clone_stream() else {
        stream.shutdown_stream();
        return;
    };
    // A peer that submits requests but never reads its replies fills
    // the kernel send buffer; bounding writes turns that into a dead
    // connection instead of a responder blocked forever (which would
    // wedge the reader on the bounded channel and hold graceful drain
    // open indefinitely).
    if writer
        .set_stream_write_timeout(Some(config.write_timeout))
        .is_err()
    {
        stream.shutdown_stream();
        return;
    }
    // Reads poll in POLL_TICK slices so the reader notices draining and
    // responder-death promptly even while idle.
    if stream.set_stream_read_timeout(Some(POLL_TICK)).is_err() {
        stream.shutdown_stream();
        return;
    }
    // Bounded queue: `Wait` entries are capped by the in-flight window,
    // `Frame` entries by the reader blocking on `send` once the
    // responder falls behind — which stops the reader reading, which
    // backpressures the peer through the socket.
    let (tx, rx) = sync_channel(config.inflight_window + 8);
    let inflight = Arc::new(AtomicUsize::new(0));
    let conn_dead = Arc::new(AtomicBool::new(false));
    let responder = {
        let inflight = Arc::clone(&inflight);
        let conn_dead = Arc::clone(&conn_dead);
        let shared = Arc::clone(shared);
        std::thread::Builder::new()
            .name("pulp-hd-net-responder".into())
            .spawn(move || responder_loop(writer, &rx, &inflight, &conn_dead, &shared))
    };
    let Ok(responder) = responder else {
        stream.shutdown_stream();
        return;
    };
    let mut stream = stream;
    reader_loop(
        stream.as_mut(),
        server,
        shared,
        config,
        &tx,
        &inflight,
        &conn_dead,
    );
    drop(tx);
    let _ = responder.join();
    stream.shutdown_stream();
}

/// One complete frame read, or the reason there is none.
enum ReadOutcome {
    Frame(FrameHeader, Vec<u8>),
    /// Clean EOF between frames.
    Eof,
    /// The server started draining while this connection was idle.
    Draining,
    /// Mid-frame stall past the read timeout.
    Stalled,
    /// Header or length failed to decode (resync is impossible).
    Malformed(WireError),
    /// Transport failure or peer vanished mid-frame.
    Dead,
}

fn read_frame(
    stream: &mut dyn WireStream,
    config: &NetConfig,
    shared: &NetShared,
    conn_dead: &AtomicBool,
) -> ReadOutcome {
    let mut header_buf = [0u8; proto::HEADER_LEN];
    match read_exact_patient(stream, &mut header_buf, true, config, shared, conn_dead) {
        ReadFill::Done => {}
        ReadFill::Eof => return ReadOutcome::Eof,
        ReadFill::Draining => return ReadOutcome::Draining,
        ReadFill::Stalled => return ReadOutcome::Stalled,
        ReadFill::Dead => return ReadOutcome::Dead,
    }
    let header = match proto::decode_header(&header_buf, config.max_frame) {
        Ok(h) => h,
        Err(e) => return ReadOutcome::Malformed(e),
    };
    let mut payload = vec![0u8; header.len as usize];
    match read_exact_patient(stream, &mut payload, false, config, shared, conn_dead) {
        ReadFill::Done => ReadOutcome::Frame(header, payload),
        ReadFill::Eof | ReadFill::Dead => ReadOutcome::Dead,
        ReadFill::Draining => ReadOutcome::Draining,
        ReadFill::Stalled => ReadOutcome::Stalled,
    }
}

enum ReadFill {
    Done,
    Eof,
    Draining,
    Stalled,
    Dead,
}

/// Fills `buf` from the stream in poll-tick slices. While no byte has
/// arrived and `idle_ok` holds (between frames), waiting is unlimited
/// but the draining flag is honored; once mid-structure, the stall
/// clock runs: more than `config.read_timeout` without progress is a
/// slow-loris kill.
fn read_exact_patient(
    stream: &mut dyn WireStream,
    buf: &mut [u8],
    idle_ok: bool,
    config: &NetConfig,
    shared: &NetShared,
    conn_dead: &AtomicBool,
) -> ReadFill {
    if buf.is_empty() {
        return ReadFill::Done;
    }
    let mut filled = 0;
    let mut last_progress = Instant::now();
    loop {
        if conn_dead.load(Ordering::SeqCst) {
            return ReadFill::Dead;
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    ReadFill::Eof
                } else {
                    ReadFill::Dead
                };
            }
            Ok(n) => {
                filled += n;
                last_progress = Instant::now();
                if filled == buf.len() {
                    return ReadFill::Done;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if filled == 0 && idle_ok {
                    if shared.draining.load(Ordering::SeqCst) {
                        return ReadFill::Draining;
                    }
                } else if last_progress.elapsed() > config.read_timeout {
                    return ReadFill::Stalled;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return ReadFill::Dead,
        }
    }
}

/// The wire deadline for a request: its own header, else the server's
/// default.
fn wire_deadline(deadline_us: u64, config: &NetConfig) -> Option<Duration> {
    if deadline_us == 0 {
        config.default_deadline
    } else {
        Some(Duration::from_micros(deadline_us))
    }
}

#[allow(clippy::too_many_lines)]
fn reader_loop(
    stream: &mut dyn WireStream,
    server: &Arc<Server>,
    shared: &Arc<NetShared>,
    config: &NetConfig,
    tx: &SyncSender<Reply>,
    inflight: &Arc<AtomicUsize>,
    conn_dead: &Arc<AtomicBool>,
) {
    let client = server.client();
    let overload = |id: u64, detail: &str| {
        // ORDERING: Relaxed telemetry counter (see NetShared).
        shared.overloaded.fetch_add(1, Ordering::Relaxed);
        Reply::Frame(proto::encode_response(
            id,
            &proto::Response::Error(WireFault::new(ErrorCode::Overloaded, detail)),
        ))
    };
    loop {
        let (header, payload) = match read_frame(stream, config, shared, conn_dead) {
            ReadOutcome::Frame(header, payload) => (header, payload),
            ReadOutcome::Eof | ReadOutcome::Dead => return,
            ReadOutcome::Draining => {
                let _ = tx.send(Reply::Frame(proto::encode_response(
                    0,
                    &proto::Response::Error(WireFault::new(
                        ErrorCode::Closed,
                        "server is draining",
                    )),
                )));
                return;
            }
            ReadOutcome::Stalled => {
                // ORDERING: Relaxed telemetry counter.
                shared.stalled.fetch_add(1, Ordering::Relaxed);
                let _ = tx.send(Reply::Frame(proto::encode_response(
                    0,
                    &proto::Response::Error(WireFault::new(
                        ErrorCode::Stalled,
                        "stalled mid-frame past the read timeout",
                    )),
                )));
                return;
            }
            ReadOutcome::Malformed(e) => {
                // ORDERING: Relaxed telemetry counter.
                shared.malformed.fetch_add(1, Ordering::Relaxed);
                let code = if matches!(e, WireError::TooLarge { .. }) {
                    ErrorCode::TooLarge
                } else {
                    ErrorCode::Malformed
                };
                let _ = tx.send(Reply::Frame(proto::encode_response(
                    0,
                    &proto::Response::Error(WireFault::new(code, e.to_string())),
                )));
                return;
            }
        };
        // ORDERING: Relaxed telemetry counter.
        shared.frames.fetch_add(1, Ordering::Relaxed);
        let request = match proto::decode_request(&header, &payload) {
            Ok(request) => request,
            Err(e) => {
                // The frame boundary was intact, but the payload is
                // garbage: answer with the request's own id, then kill
                // the connection (a peer that encodes garbage cannot be
                // trusted to stay in sync).
                // ORDERING: Relaxed telemetry counter.
                shared.malformed.fetch_add(1, Ordering::Relaxed);
                let _ = tx.send(Reply::Frame(proto::encode_response(
                    header.id,
                    &proto::Response::Error(WireFault::new(ErrorCode::Malformed, e.to_string())),
                )));
                return;
            }
        };
        let reply = match request {
            proto::Request::Classify {
                deadline_us,
                window,
            } => {
                if inflight.load(Ordering::SeqCst) >= config.inflight_window {
                    overload(header.id, "connection in-flight window full")
                } else {
                    let deadline = wire_deadline(deadline_us, config);
                    match client.try_submit_with_deadline(window, deadline) {
                        Ok(ticket) => {
                            // ORDERING: SeqCst — `inflight` is a
                            // reader-side admission bound decremented on
                            // the responder thread; the check-then-add
                            // here must stay ordered against those subs
                            // so the window cannot be overshot.
                            inflight.fetch_add(1, Ordering::SeqCst);
                            Reply::Wait {
                                id: header.id,
                                ticket,
                                deadline: deadline.map(|d| Instant::now() + d),
                            }
                        }
                        Err(TrySubmitError::Overloaded) => overload(header.id, "server queue full"),
                        Err(TrySubmitError::Closed) => {
                            let _ = tx.send(Reply::Frame(proto::encode_response(
                                header.id,
                                &proto::Response::Error(WireFault::new(
                                    ErrorCode::Closed,
                                    "server is shut down",
                                )),
                            )));
                            return;
                        }
                    }
                }
            }
            proto::Request::ClassifyBatch {
                deadline_us,
                windows,
            } => {
                let deadline = wire_deadline(deadline_us, config);
                let room = config
                    .inflight_window
                    .saturating_sub(inflight.load(Ordering::SeqCst));
                if windows.len() > room {
                    overload(header.id, "batch exceeds connection in-flight window")
                } else {
                    let mut items = Vec::with_capacity(windows.len());
                    let mut accepted = 0usize;
                    for window in windows {
                        match client.try_submit_with_deadline(window, deadline) {
                            Ok(ticket) => {
                                accepted += 1;
                                items.push(Ok(ticket));
                            }
                            Err(TrySubmitError::Overloaded) => {
                                // ORDERING: Relaxed telemetry counter.
                                shared.overloaded.fetch_add(1, Ordering::Relaxed);
                                items.push(Err(WireFault::new(
                                    ErrorCode::Overloaded,
                                    "server queue full",
                                )));
                            }
                            Err(TrySubmitError::Closed) => {
                                items.push(Err(WireFault::new(
                                    ErrorCode::Closed,
                                    "server is shut down",
                                )));
                            }
                        }
                    }
                    // ORDERING: SeqCst `inflight` protocol, as in the
                    // single-window path above.
                    inflight.fetch_add(accepted, Ordering::SeqCst);
                    Reply::WaitBatch {
                        id: header.id,
                        items,
                        deadline: deadline.map(|d| Instant::now() + d),
                    }
                }
            }
            proto::Request::Stats => Reply::Frame(proto::encode_response(
                header.id,
                &proto::Response::Stats(server.stats()),
            )),
            proto::Request::Health => {
                let report = HealthReport {
                    serving: !shared.draining.load(Ordering::SeqCst),
                    shard_healthy: server.stats().shard_healthy,
                };
                Reply::Frame(proto::encode_response(
                    header.id,
                    &proto::Response::Health(report),
                ))
            }
        };
        if tx.send(reply).is_err() {
            // Responder gone (write failure): nothing to answer to.
            return;
        }
    }
}

/// Resolves one accepted ticket against its (absolute) deadline. The
/// wire layer enforces the deadline on the reply path too — the
/// batcher's triage cannot run while the backend itself hangs, so this
/// `wait_timeout` is what keeps "every fault surfaces before its
/// deadline" true even then.
fn wait_result(ticket: Ticket, deadline: Option<Instant>) -> Result<Verdict, WireFault> {
    let outcome = match deadline {
        Some(at) => match ticket.wait_timeout(at.saturating_duration_since(Instant::now())) {
            Ok(Some(verdict)) => Ok(verdict),
            Ok(None) => Err(ServeError::DeadlineExceeded),
            Err(e) => Err(e),
        },
        None => ticket.wait(),
    };
    outcome.map_err(|e| fault_of(&e))
}

/// Maps a serve-layer error to its wire fault.
fn fault_of(e: &ServeError) -> WireFault {
    match e {
        ServeError::Backend(inner) => {
            if matches!(
                inner,
                pulp_hd_core::backend::BackendError::WorkerLost { .. }
                    | pulp_hd_core::backend::BackendError::ShardLost { .. }
            ) {
                WireFault::new(ErrorCode::WorkerLost, inner.to_string())
            } else {
                WireFault::new(ErrorCode::Backend, inner.to_string())
            }
        }
        ServeError::Config(what) => WireFault::new(ErrorCode::Backend, what.clone()),
        ServeError::Closed => WireFault::new(ErrorCode::Closed, "server is shut down"),
        ServeError::ServerDied => {
            WireFault::new(ErrorCode::ServerDied, "server batcher thread died")
        }
        ServeError::DeadlineExceeded => WireFault::new(
            ErrorCode::DeadlineExceeded,
            "deadline exceeded before service",
        ),
    }
}

fn responder_loop(
    mut writer: Box<dyn WireStream>,
    rx: &Receiver<Reply>,
    inflight: &AtomicUsize,
    conn_dead: &AtomicBool,
    shared: &NetShared,
) {
    // After a write failure the responder keeps draining (and resolving
    // tickets, keeping `inflight` accurate) but stops writing.
    let mut write_ok = true;
    for reply in rx.iter() {
        let frame = match reply {
            Reply::Frame(frame) => frame,
            Reply::Wait {
                id,
                ticket,
                deadline,
            } => {
                let result = wait_result(ticket, deadline);
                // ORDERING: SeqCst — the release half of the `inflight`
                // admission protocol (reader adds, responder subs).
                inflight.fetch_sub(1, Ordering::SeqCst);
                match result {
                    Ok(verdict) => proto::encode_response(id, &proto::Response::Verdict(verdict)),
                    Err(fault) => proto::encode_response(id, &proto::Response::Error(fault)),
                }
            }
            Reply::WaitBatch {
                id,
                items,
                deadline,
            } => {
                let results: Vec<Result<Verdict, WireFault>> = items
                    .into_iter()
                    .map(|item| match item {
                        Ok(ticket) => {
                            let result = wait_result(ticket, deadline);
                            // ORDERING: SeqCst `inflight` protocol.
                            inflight.fetch_sub(1, Ordering::SeqCst);
                            result
                        }
                        Err(fault) => Err(fault),
                    })
                    .collect();
                proto::encode_response(id, &proto::Response::VerdictBatch(results))
            }
        };
        if write_ok {
            write_ok = writer
                .write_all(&frame)
                .and_then(|()| writer.flush())
                .is_ok();
            if write_ok {
                // ORDERING: Relaxed telemetry counter.
                shared.responses.fetch_add(1, Ordering::Relaxed);
            } else {
                // Wake the reader (it is blocked in poll-tick reads) so
                // the connection winds down instead of reading requests
                // nobody can answer.
                // ORDERING: SeqCst kill flag — must become visible to
                // the reader's SeqCst poll before it commits to another
                // blocking read tick.
                conn_dead.store(true, Ordering::SeqCst);
            }
        }
    }
    writer.shutdown_stream();
}
