//! Network serving: a hardened wire front-end for the micro-batcher.
//!
//! The in-process [`Server`](crate::Server) serves callers in the same
//! address space; this module puts it on the network — TCP and Unix
//! domain sockets, one length-prefixed binary protocol
//! ([`proto`]) — with the failure surface designed first:
//!
//! * **Backpressure end to end.** Each connection has a bounded
//!   in-flight window ([`NetConfig::inflight_window`]); past it, and
//!   past the batcher's own bounded queue, requests are shed with a
//!   typed [`ErrorCode::Overloaded`] response, never queued unboundedly.
//! * **Deadlines on the wire.** Each request frame carries a deadline
//!   (microseconds); the server propagates it into the batcher's
//!   deadline triage *and* enforces it on the reply path, so even a
//!   wedged backend answers with [`ErrorCode::DeadlineExceeded`] in
//!   time.
//! * **Hostile input is a connection problem, not a server problem.**
//!   Oversized frames, garbage, mid-frame stalls (slow-loris), and
//!   peers that stop reading their replies (write stalls) get a typed
//!   error and kill *that connection only*; the frame decoder never
//!   panics (fuzzed in `tests/proto_fuzz.rs`).
//! * **Graceful drain.** Shutdown refuses new connections, answers
//!   every accepted request, then stops — mirroring the in-process
//!   server's contract.
//! * **Chaos-tested.** [`FaultTransport`] injects seeded disconnects,
//!   truncations, garbage, and stalls; `tests/net_chaos.rs` pins that
//!   the server survives all of them with verdicts bit-identical for
//!   healthy clients.
//!
//! [`NetServer`] is the listener side; [`NetClient`] the caller side,
//! with connect/request timeouts and bounded retry-with-backoff on
//! transient (worker-loss / transport) failures.

mod client;
pub mod proto;
mod server;
mod transport;

pub use client::NetClient;
pub use proto::{ErrorCode, HealthReport, WireError, WireFault};
pub use server::{BoundEndpoint, Endpoint, NetServer, NetStats};
pub use transport::{CloneableStream, FaultTransport, TransportFault, TransportPlan, WireStream};

use std::io;
use std::time::Duration;

/// Errors surfaced by the network serving layer — the wire-side mirror
/// of [`ServeError`](crate::ServeError), with the transport failures
/// only a networked caller can see.
#[derive(Debug)]
#[non_exhaustive]
pub enum NetError {
    /// A transport-level failure (connect, read, write). The connection
    /// is dropped; idempotent requests may be retried on a fresh one.
    Io(io::Error),
    /// No complete response arrived within the client's
    /// [`request_timeout`](NetClientConfig::request_timeout).
    Timeout,
    /// Shed by backpressure (server queue or per-connection in-flight
    /// window full).
    Overloaded,
    /// The request's deadline expired before service.
    DeadlineExceeded,
    /// The server is shut down or draining.
    Closed,
    /// The server's batcher thread died.
    ServerDied,
    /// A contained worker loss — transient; the client retries these
    /// automatically up to its budget.
    WorkerLost(String),
    /// The backend rejected this request (bad window shape, …). Not
    /// retried: the same input would fail again.
    Backend(String),
    /// The peer violated the wire protocol (undecodable frame,
    /// unexpected response kind, id mismatch).
    Protocol(String),
    /// The client or server configuration is invalid.
    Config(String),
}

impl core::fmt::Display for NetError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "transport: {e}"),
            Self::Timeout => write!(f, "request timed out"),
            Self::Overloaded => write!(f, "server overloaded"),
            Self::DeadlineExceeded => write!(f, "request deadline exceeded before service"),
            Self::Closed => write!(f, "server is shut down"),
            Self::ServerDied => write!(f, "server batcher thread died"),
            Self::WorkerLost(detail) => write!(f, "worker lost: {detail}"),
            Self::Backend(detail) => write!(f, "backend: {detail}"),
            Self::Protocol(detail) => write!(f, "protocol violation: {detail}"),
            Self::Config(what) => write!(f, "config: {what}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl NetError {
    /// Converts a wire fault into the typed client-side error.
    fn from_fault(fault: proto::WireFault) -> Self {
        match fault.code {
            ErrorCode::Backend => Self::Backend(fault.detail),
            ErrorCode::WorkerLost => Self::WorkerLost(fault.detail),
            ErrorCode::Overloaded => Self::Overloaded,
            ErrorCode::DeadlineExceeded => Self::DeadlineExceeded,
            ErrorCode::Closed => Self::Closed,
            ErrorCode::ServerDied => Self::ServerDied,
            ErrorCode::Malformed | ErrorCode::TooLarge | ErrorCode::Stalled => {
                Self::Protocol(fault.detail)
            }
        }
    }

    /// Whether an automatic retry (possibly on a fresh connection) can
    /// help: transport failures and contained worker losses, yes;
    /// deterministic rejections (backend, overload, deadline, closed),
    /// no.
    fn retryable(&self) -> bool {
        matches!(self, Self::Io(_) | Self::WorkerLost(_) | Self::Protocol(_))
    }
}

/// Server-side knobs of the wire front-end.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Per-frame payload cap in bytes; larger declared payloads are
    /// rejected with [`ErrorCode::TooLarge`] and the connection is
    /// closed (the declared length cannot be trusted for resync).
    pub max_frame: u32,
    /// Per-connection in-flight request cap: more concurrent
    /// unanswered requests than this are shed with
    /// [`ErrorCode::Overloaded`].
    pub inflight_window: usize,
    /// How long a peer may stall *mid-frame* before the connection is
    /// killed with [`ErrorCode::Stalled`] (slow-loris defense). Idle
    /// time between frames is unlimited.
    pub read_timeout: Duration,
    /// How long a response write may block before the connection is
    /// treated as dead. A peer that submits requests but stops reading
    /// replies (or advertises a zero window) fills the kernel send
    /// buffer; without this bound the responder would block forever,
    /// holding the connection — and graceful drain — open indefinitely.
    pub write_timeout: Duration,
    /// Deadline applied to wire requests that carry none of their own
    /// (`deadline_us == 0`). `None` leaves them deadline-free.
    pub default_deadline: Option<Duration>,
    /// Cap on concurrently-open connections; connects past it are
    /// refused immediately.
    pub max_connections: usize,
}

impl Default for NetConfig {
    /// 4 MiB frames, 64 in-flight requests per connection, 2 s
    /// mid-frame stall cap, 5 s write stall cap, no default deadline,
    /// 1024 connections.
    fn default() -> Self {
        Self {
            max_frame: proto::DEFAULT_MAX_FRAME,
            inflight_window: 64,
            read_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(5),
            default_deadline: None,
            max_connections: 1024,
        }
    }
}

impl NetConfig {
    fn validate(&self) -> Result<(), NetError> {
        if self.inflight_window == 0 {
            return Err(NetError::Config(
                "inflight_window must be at least 1".into(),
            ));
        }
        if self.max_connections == 0 {
            return Err(NetError::Config(
                "max_connections must be at least 1".into(),
            ));
        }
        if self.read_timeout.is_zero() {
            return Err(NetError::Config("read_timeout must be non-zero".into()));
        }
        if self.write_timeout.is_zero() {
            return Err(NetError::Config("write_timeout must be non-zero".into()));
        }
        Ok(())
    }
}

/// Client-side knobs for [`NetClient`].
#[derive(Debug, Clone)]
pub struct NetClientConfig {
    /// TCP connect timeout (UDS connects are effectively instant).
    pub connect_timeout: Duration,
    /// End-to-end cap per request attempt: if no complete response
    /// arrives in time, the attempt fails with [`NetError::Timeout`]
    /// and the connection is dropped (the stream may be mid-frame).
    /// `None` waits forever.
    pub request_timeout: Option<Duration>,
    /// Wire deadline stamped on every classify request that is not
    /// given an explicit one. `None` sends no deadline.
    pub deadline: Option<Duration>,
    /// How many times a transient failure (transport error, contained
    /// worker loss) is retried — on a fresh connection for transport
    /// failures — before surfacing.
    pub retries: u32,
    /// Pause between retry attempts.
    pub retry_backoff: Duration,
    /// Per-frame payload cap for *responses* (mirror of the server's
    /// [`NetConfig::max_frame`]).
    pub max_frame: u32,
}

impl Default for NetClientConfig {
    /// 1 s connect timeout, 30 s request timeout, no wire deadline, two
    /// retries 1 ms apart, 4 MiB frames.
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_secs(1),
            request_timeout: Some(Duration::from_secs(30)),
            deadline: None,
            retries: 2,
            retry_backoff: Duration::from_millis(1),
            max_frame: proto::DEFAULT_MAX_FRAME,
        }
    }
}
