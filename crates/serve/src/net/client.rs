//! The caller side of the wire front-end: a blocking client with
//! connect/request timeouts, typed errors mirroring
//! [`ServeError`](crate::ServeError), and bounded retry-with-backoff on
//! transient failures.

use std::io::Write;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::path::Path;
use std::time::{Duration, Instant};

use pulp_hd_core::backend::Verdict;

use crate::ServerStats;

use super::proto::{self, ErrorCode, HealthReport, Request, Response};
use super::transport::WireStream;
use super::{NetClientConfig, NetError};

/// How a client reaches its server: a dialer producing fresh streams,
/// so retries can reconnect after a transport failure.
type Dialer = Box<dyn FnMut() -> std::io::Result<Box<dyn WireStream>> + Send>;

/// A blocking network client for a [`NetServer`](super::NetServer).
///
/// One client drives one connection at a time (requests are
/// round-tripped sequentially); spin up one client per caller thread
/// for concurrency, exactly like [`Client`](crate::Client) handles.
///
/// Classification is idempotent, so transient failures — transport
/// errors, [`NetError::WorkerLost`] — are retried automatically (fresh
/// connection for transport failures) up to
/// [`retries`](NetClientConfig::retries) times. Deterministic
/// rejections ([`NetError::Backend`], [`NetError::Overloaded`],
/// [`NetError::DeadlineExceeded`], [`NetError::Closed`]) are not.
pub struct NetClient {
    dial: Dialer,
    stream: Option<Box<dyn WireStream>>,
    config: NetClientConfig,
    next_id: u64,
}

impl core::fmt::Debug for NetClient {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("NetClient")
            .field("connected", &self.stream.is_some())
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl NetClient {
    /// Connects over TCP (the address is resolved once, at connect
    /// time, honoring [`connect_timeout`](NetClientConfig::connect_timeout)).
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] if the address cannot be resolved or connected.
    pub fn connect_tcp(
        addr: impl ToSocketAddrs,
        config: NetClientConfig,
    ) -> Result<Self, NetError> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        let timeout = config.connect_timeout;
        Self::connect_with(
            Box::new(move || {
                let mut last = None;
                for a in &addrs {
                    match TcpStream::connect_timeout(a, timeout) {
                        Ok(stream) => {
                            stream.set_nodelay(true)?;
                            return Ok(Box::new(stream) as Box<dyn WireStream>);
                        }
                        Err(e) => last = Some(e),
                    }
                }
                Err(last.unwrap_or_else(|| {
                    std::io::Error::new(std::io::ErrorKind::InvalidInput, "no addresses")
                }))
            }),
            config,
        )
    }

    /// Connects over a Unix-domain socket.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] if the socket cannot be connected.
    pub fn connect_uds(path: impl AsRef<Path>, config: NetClientConfig) -> Result<Self, NetError> {
        let path = path.as_ref().to_path_buf();
        Self::connect_with(
            Box::new(move || {
                let stream = std::os::unix::net::UnixStream::connect(&path)?;
                Ok(Box::new(stream) as Box<dyn WireStream>)
            }),
            config,
        )
    }

    /// Connects through a custom dialer — the hook the chaos suite uses
    /// to wrap connections in a
    /// [`FaultTransport`](super::FaultTransport). The dialer is called
    /// once now and again on every reconnect.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] if the first dial fails.
    pub fn connect_with(mut dial: Dialer, config: NetClientConfig) -> Result<Self, NetError> {
        let stream = dial()?;
        Ok(Self {
            dial,
            stream: Some(stream),
            config,
            next_id: 1,
        })
    }

    /// Classifies one window, using the config-wide
    /// [`deadline`](NetClientConfig::deadline) (if any) as the wire
    /// deadline.
    ///
    /// # Errors
    ///
    /// Any [`NetError`]; transient failures are retried first.
    pub fn classify(&mut self, window: &[Vec<u16>]) -> Result<Verdict, NetError> {
        self.classify_inner(window, self.config.deadline)
    }

    /// Classifies one window with an explicit wire deadline: if it is
    /// not served within `deadline` of arriving at the server, the
    /// request resolves with [`NetError::DeadlineExceeded`].
    ///
    /// # Errors
    ///
    /// As [`classify`](Self::classify).
    pub fn classify_with_deadline(
        &mut self,
        window: &[Vec<u16>],
        deadline: Duration,
    ) -> Result<Verdict, NetError> {
        self.classify_inner(window, Some(deadline))
    }

    fn classify_inner(
        &mut self,
        window: &[Vec<u16>],
        deadline: Option<Duration>,
    ) -> Result<Verdict, NetError> {
        let request = Request::Classify {
            deadline_us: deadline_us(deadline),
            window: window.to_vec(),
        };
        match self.roundtrip(&request)? {
            Response::Verdict(verdict) => Ok(verdict),
            Response::Error(fault) => Err(NetError::from_fault(fault)),
            _ => {
                self.stream = None;
                Err(NetError::Protocol("unexpected response kind".into()))
            }
        }
    }

    /// Classifies a batch of windows in one frame, returning one
    /// verdict-or-error per window in order.
    ///
    /// # Errors
    ///
    /// A frame-level [`NetError`] if the whole request failed;
    /// otherwise per-window errors appear in the returned vector.
    pub fn classify_batch(
        &mut self,
        windows: &[Vec<Vec<u16>>],
    ) -> Result<Vec<Result<Verdict, NetError>>, NetError> {
        let request = Request::ClassifyBatch {
            deadline_us: deadline_us(self.config.deadline),
            windows: windows.to_vec(),
        };
        match self.roundtrip(&request)? {
            Response::VerdictBatch(items) => Ok(items
                .into_iter()
                .map(|item| item.map_err(NetError::from_fault))
                .collect()),
            Response::Error(fault) => Err(NetError::from_fault(fault)),
            _ => {
                self.stream = None;
                Err(NetError::Protocol("unexpected response kind".into()))
            }
        }
    }

    /// Fetches the server's full [`ServerStats`] snapshot over the
    /// wire (including shard health and cache counters).
    ///
    /// # Errors
    ///
    /// Any [`NetError`].
    pub fn stats(&mut self) -> Result<ServerStats, NetError> {
        match self.roundtrip(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            Response::Error(fault) => Err(NetError::from_fault(fault)),
            _ => {
                self.stream = None;
                Err(NetError::Protocol("unexpected response kind".into()))
            }
        }
    }

    /// Probes liveness and per-shard health — the load-balancer
    /// health-check endpoint.
    ///
    /// # Errors
    ///
    /// Any [`NetError`].
    pub fn health(&mut self) -> Result<HealthReport, NetError> {
        match self.roundtrip(&Request::Health)? {
            Response::Health(report) => Ok(report),
            Response::Error(fault) => Err(NetError::from_fault(fault)),
            _ => {
                self.stream = None;
                Err(NetError::Protocol("unexpected response kind".into()))
            }
        }
    }

    /// One request, with the retry policy applied around it.
    fn roundtrip(&mut self, request: &Request) -> Result<Response, NetError> {
        let mut attempt = 0u32;
        loop {
            match self.try_roundtrip(request) {
                Err(e) if e.retryable() && attempt < self.config.retries => {
                    attempt += 1;
                    std::thread::sleep(self.config.retry_backoff);
                }
                other => return other,
            }
        }
    }

    fn try_roundtrip(&mut self, request: &Request) -> Result<Response, NetError> {
        let id = self.next_id;
        self.next_id += 1;
        let frame = proto::encode_request(id, request);
        let give_up = self.config.request_timeout.map(|t| Instant::now() + t);
        // Any transport or framing failure from here poisons the stream
        // (we may be mid-frame, or desynchronized); drop it so the next
        // attempt redials.
        let result = self.drive(&frame, id, give_up);
        if matches!(
            result,
            Err(NetError::Io(_) | NetError::Timeout | NetError::Protocol(_))
        ) {
            self.stream = None;
        }
        // Server-side faults ride back as `Ok(Response::Error(..))`
        // carrying the request id; lift the transient class — a
        // contained worker loss — into `Err` here so the retry loop in
        // `roundtrip` sees it. The connection stays: frame boundaries
        // held, only a backend worker died.
        match result {
            Ok(Response::Error(fault)) if fault.code == ErrorCode::WorkerLost => {
                Err(NetError::from_fault(fault))
            }
            other => other,
        }
    }

    fn drive(
        &mut self,
        frame: &[u8],
        id: u64,
        give_up: Option<Instant>,
    ) -> Result<Response, NetError> {
        if self.stream.is_none() {
            self.stream = Some((self.dial)()?);
        }
        // INFALLIBLE: the branch above just filled `self.stream` (or
        // returned the dial error), so the Option is Some here.
        let stream = self.stream.as_mut().expect("just connected");
        stream.write_all(frame)?;
        stream.flush()?;
        loop {
            let remaining = match give_up {
                Some(at) => {
                    let left = at.saturating_duration_since(Instant::now());
                    if left.is_zero() {
                        return Err(NetError::Timeout);
                    }
                    Some(left)
                }
                None => None,
            };
            stream.set_stream_read_timeout(remaining)?;
            let mut header_buf = [0u8; proto::HEADER_LEN];
            read_exact(stream.as_mut(), &mut header_buf)?;
            let header = proto::decode_header(&header_buf, self.config.max_frame)
                .map_err(|e| NetError::Protocol(e.to_string()))?;
            let mut payload = vec![0u8; header.len as usize];
            read_exact(stream.as_mut(), &mut payload)?;
            let response = proto::decode_response(&header, &payload)
                .map_err(|e| NetError::Protocol(e.to_string()))?;
            if header.id == id {
                return Ok(response);
            }
            if header.id == 0 {
                // Server-initiated go-away (drain, stall kill): typed.
                if let Response::Error(fault) = response {
                    return Err(NetError::from_fault(fault));
                }
                return Err(NetError::Protocol("unsolicited non-error frame".into()));
            }
            if header.id > id {
                return Err(NetError::Protocol("response id from the future".into()));
            }
            // header.id < id: a stale response to an abandoned earlier
            // request (e.g. one that timed out client-side before this
            // connection was reused) — skip it.
        }
    }
}

/// A read_exact that maps timeout-ish errors to [`NetError::Timeout`]
/// and everything else to [`NetError::Io`].
fn read_exact(stream: &mut dyn WireStream, buf: &mut [u8]) -> Result<(), NetError> {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(NetError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                )))
            }
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Err(NetError::Timeout)
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(NetError::Io(e)),
        }
    }
    Ok(())
}

/// The wire encoding of an optional deadline (0 = none).
fn deadline_us(deadline: Option<Duration>) -> u64 {
    deadline.map_or(0, |d| {
        u64::try_from(d.as_micros()).unwrap_or(u64::MAX).max(1)
    })
}
