//! The wire codec: length-prefixed binary frames, no I/O.
//!
//! Every frame is a fixed 20-byte header followed by `payload_len`
//! bytes of payload, all little-endian:
//!
//! ```text
//! offset  size  field
//! 0       4     magic        0x3144_484E ("NHD1" LE)
//! 4       1     version      1
//! 5       1     kind         request/response discriminant
//! 6       2     reserved     must be 0
//! 8       8     request_id   echoed verbatim in the response
//! 16      4     payload_len  bytes that follow (bounded by max_frame)
//! ```
//!
//! The decoder is the robustness boundary of the whole net layer: it is
//! driven by arbitrary bytes from the network, so **every** path is
//! bounds-checked and returns a typed [`WireError`] — never a panic,
//! never an unbounded allocation (length fields are capped *and*
//! checked against the bytes actually present before anything is
//! reserved). `tests/proto_fuzz.rs` pins this with arbitrary, truncated
//! and bit-flipped streams.

use std::time::Duration;

use pulp_hd_core::backend::{BinaryHv, CycleBreakdown, Verdict, VerdictSource};

use crate::ServerStats;

/// Frame magic, little-endian `"NHD1"`.
pub const MAGIC: u32 = 0x3144_484E;
/// Protocol version carried in every header.
pub const VERSION: u8 = 1;
/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 20;
/// Default per-frame payload cap (4 MiB) — see
/// [`NetConfig::max_frame`](crate::net::NetConfig::max_frame).
pub const DEFAULT_MAX_FRAME: u32 = 4 * 1024 * 1024;

/// Request kinds (client → server).
pub mod kind {
    /// Classify one window.
    pub const CLASSIFY: u8 = 0x01;
    /// Classify a batch of windows in one frame.
    pub const CLASSIFY_BATCH: u8 = 0x02;
    /// Snapshot the server's [`ServerStats`](crate::ServerStats).
    pub const STATS: u8 = 0x03;
    /// Liveness + per-shard health probe.
    pub const HEALTH: u8 = 0x04;
    /// Response: one verdict.
    pub const R_VERDICT: u8 = 0x81;
    /// Response: per-window verdicts/faults for a batch.
    pub const R_VERDICT_BATCH: u8 = 0x82;
    /// Response: a stats snapshot.
    pub const R_STATS: u8 = 0x83;
    /// Response: a health report.
    pub const R_HEALTH: u8 = 0x84;
    /// Response: a typed fault (request-level failure).
    pub const R_ERROR: u8 = 0xEE;
}

/// Caps on the list-length fields a peer can claim, enforced *before*
/// any allocation. Combined with the remaining-bytes check they bound
/// decoder memory to a small multiple of the received frame.
const MAX_BATCH: u32 = 1 << 16;
const MAX_SAMPLES: u32 = 1 << 20;
const MAX_CHANNELS: u32 = 1 << 16;
const MAX_VEC: u32 = 1 << 20;
const MAX_DETAIL: u32 = 1 << 16;

/// A decoding failure: the frame (or stream position) is not a valid
/// protocol frame. Always a value, never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes than the structure requires.
    Truncated {
        /// Bytes the structure needed.
        need: usize,
        /// Bytes available.
        have: usize,
    },
    /// The magic bytes are not [`MAGIC`] — the peer is not speaking
    /// this protocol (or the stream is corrupt/desynchronized).
    BadMagic(u32),
    /// The version byte is not [`VERSION`].
    BadVersion(u8),
    /// The kind byte names no known frame type.
    UnknownKind(u8),
    /// The declared payload length exceeds the configured frame cap.
    TooLarge {
        /// Declared payload length.
        len: u32,
        /// The cap it exceeded.
        max: u32,
    },
    /// Structurally invalid payload (bad discriminant, length field
    /// over its cap, trailing bytes, …).
    Malformed(&'static str),
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Truncated { need, have } => {
                write!(f, "truncated frame: need {need} bytes, have {have}")
            }
            Self::BadMagic(m) => write!(f, "bad magic {m:#010x}"),
            Self::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            Self::UnknownKind(k) => write!(f, "unknown frame kind {k:#04x}"),
            Self::TooLarge { len, max } => {
                write!(f, "frame payload {len} bytes exceeds cap {max}")
            }
            Self::Malformed(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// A decoded frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Frame kind (one of the [`kind`] constants, or unknown — payload
    /// decoding rejects unknowns so the server can answer with a typed
    /// error that echoes the request id).
    pub kind: u8,
    /// Request id, echoed in the response (0 is reserved for
    /// server-initiated frames such as the shutdown go-away).
    pub id: u64,
    /// Payload bytes following the header.
    pub len: u32,
}

/// One request window: `samples × channels` quantized codes.
pub type Window = Vec<Vec<u16>>;

/// A decoded request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Classify one window; `deadline_us` 0 means no deadline.
    Classify {
        /// Per-request deadline in microseconds from receipt (0 = none).
        deadline_us: u64,
        /// The window to classify.
        window: Window,
    },
    /// Classify many windows in one frame (one verdict-or-fault each).
    ClassifyBatch {
        /// Per-request deadline in microseconds from receipt (0 = none),
        /// applied to every window in the batch.
        deadline_us: u64,
        /// The windows to classify.
        windows: Vec<Window>,
    },
    /// Snapshot the server's stats.
    Stats,
    /// Liveness + shard-health probe.
    Health,
}

/// A request-level failure, carried on the wire with a stable numeric
/// code plus a human-readable detail string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireFault {
    /// What failed (stable across releases; match on this).
    pub code: ErrorCode,
    /// Human-readable detail (free-form; do not match on this).
    pub detail: String,
}

impl WireFault {
    /// A fault with the given code and detail.
    pub fn new(code: ErrorCode, detail: impl Into<String>) -> Self {
        Self {
            code,
            detail: detail.into(),
        }
    }
}

/// Stable wire error codes, mirroring
/// [`ServeError`](crate::ServeError) plus the transport-level failures
/// only a network front-end can have.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The backend rejected this request
    /// ([`ServeError::Backend`](crate::ServeError::Backend)).
    Backend = 1,
    /// A contained worker loss — safe to retry
    /// ([`BackendError::WorkerLost`](pulp_hd_core::backend::BackendError::WorkerLost)).
    WorkerLost = 2,
    /// Shed by backpressure: the bounded queue or this connection's
    /// in-flight window is full
    /// ([`TrySubmitError::Overloaded`](crate::TrySubmitError::Overloaded)).
    Overloaded = 3,
    /// The request's deadline expired before service
    /// ([`ServeError::DeadlineExceeded`](crate::ServeError::DeadlineExceeded)).
    DeadlineExceeded = 4,
    /// The server is shut down or draining
    /// ([`ServeError::Closed`](crate::ServeError::Closed)).
    Closed = 5,
    /// The batcher thread died
    /// ([`ServeError::ServerDied`](crate::ServeError::ServerDied)).
    ServerDied = 6,
    /// The frame could not be decoded; the server closes the connection
    /// after sending this.
    Malformed = 7,
    /// The frame exceeded the server's
    /// [`max_frame`](crate::net::NetConfig::max_frame); connection
    /// closed after sending this.
    TooLarge = 8,
    /// The peer stalled mid-frame past the server's read timeout
    /// (slow-loris defense); connection closed after sending this.
    Stalled = 9,
}

impl ErrorCode {
    /// The code for a wire byte, if it names one.
    #[must_use]
    pub fn from_u8(byte: u8) -> Option<Self> {
        Some(match byte {
            1 => Self::Backend,
            2 => Self::WorkerLost,
            3 => Self::Overloaded,
            4 => Self::DeadlineExceeded,
            5 => Self::Closed,
            6 => Self::ServerDied,
            7 => Self::Malformed,
            8 => Self::TooLarge,
            9 => Self::Stalled,
            _ => return None,
        })
    }
}

/// A liveness report: [`kind::HEALTH`]'s response payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthReport {
    /// `true` while the server accepts new requests (flips to `false`
    /// when draining).
    pub serving: bool,
    /// Per-shard health, as [`ServerStats::shard_healthy`] — empty when
    /// the served session is unsharded or no monitor is registered.
    pub shard_healthy: Vec<bool>,
}

/// A decoded response frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// One verdict for a [`Request::Classify`].
    Verdict(Verdict),
    /// Per-window results for a [`Request::ClassifyBatch`].
    VerdictBatch(Vec<Result<Verdict, WireFault>>),
    /// A stats snapshot for a [`Request::Stats`].
    Stats(ServerStats),
    /// A health report for a [`Request::Health`].
    Health(HealthReport),
    /// A request-level fault (any request kind).
    Error(WireFault),
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    let take = bytes.len().min(MAX_DETAIL as usize);
    // Truncate on a char boundary so the wire always carries valid
    // UTF-8 (details are human-readable diagnostics; losing a tail is
    // fine, sending invalid UTF-8 is not).
    let mut end = take;
    while end > 0 && !s.is_char_boundary(end) {
        end -= 1;
    }
    put_u32(out, end as u32);
    out.extend_from_slice(&bytes[..end]);
}

fn put_window(out: &mut Vec<u8>, window: &[Vec<u16>]) {
    let channels = window.first().map_or(0, Vec::len);
    // A window of zero-width samples carries no data; normalize it to
    // the empty window so the encoder never emits the
    // `channels == 0 && samples > 0` shape the decoder rejects.
    let samples = if channels == 0 { 0 } else { window.len() };
    put_u32(out, samples as u32);
    put_u32(out, channels as u32);
    for sample in &window[..samples] {
        // Ragged windows are invalid inputs; pad/truncate to the first
        // sample's width so the frame stays self-consistent and the
        // backend's own validation reports the real problem.
        for c in 0..channels {
            put_u16(out, sample.get(c).copied().unwrap_or(0));
        }
    }
}

fn put_verdict(out: &mut Vec<u8>, v: &Verdict) {
    put_u32(out, v.class as u32);
    out.push(match v.source {
        VerdictSource::Scan => 0,
        VerdictSource::EarlyAccept => 1,
        VerdictSource::CacheHit => 2,
    });
    match &v.cycles {
        None => out.push(0),
        Some(c) => {
            out.push(1);
            put_u64(out, c.map_encode);
            put_u64(out, c.am);
            put_u64(out, c.total);
        }
    }
    put_u32(out, v.distances.len() as u32);
    for &d in &v.distances {
        put_u32(out, d);
    }
    let words = v.query.words();
    put_u32(out, words.len() as u32);
    for &w in words {
        put_u32(out, w);
    }
}

fn put_fault(out: &mut Vec<u8>, fault: &WireFault) {
    out.push(fault.code as u8);
    put_str(out, &fault.detail);
}

fn put_stats(out: &mut Vec<u8>, s: &ServerStats) {
    put_u64(out, s.completed);
    put_u64(out, s.rejected);
    put_u64(out, s.batches);
    put_f64(out, s.mean_batch);
    put_u64(out, s.p50_us);
    put_u64(out, s.p95_us);
    put_u64(out, s.p99_us);
    put_u64(out, s.latency_max_us);
    put_f64(out, s.latency_mean_us);
    put_u64(out, s.batch_service_max_us);
    put_f64(out, s.batch_service_mean_us);
    put_u64(out, u64::try_from(s.elapsed.as_nanos()).unwrap_or(u64::MAX));
    put_f64(out, s.windows_per_sec);
    put_u64(out, s.deadline_expired);
    put_u64(out, s.retried_batches);
    put_u64(out, s.contained_panics);
    put_u32(out, s.shard_windows.len() as u32);
    for &w in &s.shard_windows {
        put_u64(out, w);
    }
    put_u32(out, s.shard_healthy.len() as u32);
    for &h in &s.shard_healthy {
        out.push(u8::from(h));
    }
    put_u64(out, s.cache_hits);
    put_u64(out, s.cache_misses);
    put_u64(out, s.cache_evictions);
}

/// Wraps `payload` in a frame header, producing the full wire bytes.
#[must_use]
pub fn frame(kind: u8, id: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    put_u32(&mut out, MAGIC);
    out.push(VERSION);
    out.push(kind);
    put_u16(&mut out, 0);
    put_u64(&mut out, id);
    put_u32(&mut out, payload.len() as u32);
    out.extend_from_slice(payload);
    out
}

/// Encodes one request as a complete frame.
#[must_use]
pub fn encode_request(id: u64, req: &Request) -> Vec<u8> {
    let mut payload = Vec::new();
    let kind = match req {
        Request::Classify {
            deadline_us,
            window,
        } => {
            put_u64(&mut payload, *deadline_us);
            put_window(&mut payload, window);
            kind::CLASSIFY
        }
        Request::ClassifyBatch {
            deadline_us,
            windows,
        } => {
            put_u64(&mut payload, *deadline_us);
            put_u32(&mut payload, windows.len() as u32);
            for w in windows {
                put_window(&mut payload, w);
            }
            kind::CLASSIFY_BATCH
        }
        Request::Stats => kind::STATS,
        Request::Health => kind::HEALTH,
    };
    frame(kind, id, &payload)
}

/// Encodes one response as a complete frame.
#[must_use]
pub fn encode_response(id: u64, resp: &Response) -> Vec<u8> {
    let mut payload = Vec::new();
    let kind = match resp {
        Response::Verdict(v) => {
            put_verdict(&mut payload, v);
            kind::R_VERDICT
        }
        Response::VerdictBatch(items) => {
            put_u32(&mut payload, items.len() as u32);
            for item in items {
                match item {
                    Ok(v) => {
                        payload.push(1);
                        put_verdict(&mut payload, v);
                    }
                    Err(fault) => {
                        payload.push(0);
                        put_fault(&mut payload, fault);
                    }
                }
            }
            kind::R_VERDICT_BATCH
        }
        Response::Stats(s) => {
            put_stats(&mut payload, s);
            kind::R_STATS
        }
        Response::Health(h) => {
            payload.push(u8::from(h.serving));
            put_u32(&mut payload, h.shard_healthy.len() as u32);
            for &b in &h.shard_healthy {
                payload.push(u8::from(b));
            }
            kind::R_HEALTH
        }
        Response::Error(fault) => {
            put_fault(&mut payload, fault);
            kind::R_ERROR
        }
    };
    frame(kind, id, &payload)
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// A bounds-checked little-endian reader over a payload slice.
struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                need: n,
                have: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads exactly `N` bytes into a fixed array, with the bounds
    /// check done once in [`Cur::take`].
    fn arr<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        // INFALLIBLE: `take(N)` either errs or returns exactly N bytes,
        // so the fixed-size copy cannot mismatch.
        let mut out = [0u8; N];
        out.copy_from_slice(self.take(N)?);
        Ok(out)
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.arr()?))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.arr()?))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.arr()?))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a list length and checks it against both its cap and the
    /// bytes actually remaining (`min_elem` bytes per element), so a
    /// hostile length field can never drive a large allocation.
    fn len(&mut self, cap: u32, min_elem: usize, what: &'static str) -> Result<usize, WireError> {
        let n = self.u32()?;
        if n > cap {
            return Err(WireError::Malformed(what));
        }
        let n = n as usize;
        let need = n.checked_mul(min_elem).ok_or(WireError::Malformed(what))?;
        if self.remaining() < need {
            return Err(WireError::Truncated {
                need,
                have: self.remaining(),
            });
        }
        Ok(n)
    }

    fn done(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::Malformed("trailing bytes after payload"))
        }
    }
}

/// Decodes a frame header from (at least) [`HEADER_LEN`] bytes,
/// enforcing `max_frame` on the declared payload length.
///
/// # Errors
///
/// [`WireError::Truncated`] on short input, [`WireError::BadMagic`] /
/// [`WireError::BadVersion`] / [`WireError::Malformed`] on corrupt
/// headers, [`WireError::TooLarge`] past the cap. The kind byte is
/// *not* validated here — payload decoding rejects unknown kinds, so a
/// server can still echo the request id in its typed error.
pub fn decode_header(buf: &[u8], max_frame: u32) -> Result<FrameHeader, WireError> {
    let mut cur = Cur::new(buf);
    let magic = cur.u32()?;
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let version = cur.u8()?;
    if version != VERSION {
        return Err(WireError::BadVersion(version));
    }
    let kind = cur.u8()?;
    if cur.u16()? != 0 {
        return Err(WireError::Malformed("reserved header bytes must be zero"));
    }
    let id = cur.u64()?;
    let len = cur.u32()?;
    if len > max_frame {
        return Err(WireError::TooLarge {
            len,
            max: max_frame,
        });
    }
    Ok(FrameHeader { kind, id, len })
}

fn take_window(cur: &mut Cur<'_>) -> Result<Window, WireError> {
    let samples = {
        let n = cur.u32()?;
        if n > MAX_SAMPLES {
            return Err(WireError::Malformed("window sample count over cap"));
        }
        n as usize
    };
    let channels = {
        let n = cur.u32()?;
        if n > MAX_CHANNELS {
            return Err(WireError::Malformed("window channel count over cap"));
        }
        n as usize
    };
    if channels == 0 && samples > 0 {
        // The encoder only emits `channels == 0` for empty windows. A
        // claimed sample count with zero channels needs zero payload
        // bytes, so the remaining-bytes check below would wave through
        // `Vec::with_capacity(samples)` — ~24 bytes of `Vec` header per
        // claimed sample from an 8-byte window, defeating the
        // allocation bound this decoder exists to enforce.
        return Err(WireError::Malformed("zero-channel window claims samples"));
    }
    let need = samples
        .checked_mul(channels)
        .and_then(|n| n.checked_mul(2))
        .ok_or(WireError::Malformed("window size overflow"))?;
    if cur.remaining() < need {
        return Err(WireError::Truncated {
            need,
            have: cur.remaining(),
        });
    }
    let mut window = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut sample = Vec::with_capacity(channels);
        for _ in 0..channels {
            sample.push(cur.u16()?);
        }
        window.push(sample);
    }
    Ok(window)
}

fn take_fault(cur: &mut Cur<'_>) -> Result<WireFault, WireError> {
    let code = ErrorCode::from_u8(cur.u8()?).ok_or(WireError::Malformed("unknown error code"))?;
    let len = cur.len(MAX_DETAIL, 1, "error detail over cap")?;
    let detail = core::str::from_utf8(cur.take(len)?)
        .map_err(|_| WireError::Malformed("error detail is not UTF-8"))?
        .to_owned();
    Ok(WireFault { code, detail })
}

fn take_verdict(cur: &mut Cur<'_>) -> Result<Verdict, WireError> {
    let class = cur.u32()? as usize;
    let source = match cur.u8()? {
        0 => VerdictSource::Scan,
        1 => VerdictSource::EarlyAccept,
        2 => VerdictSource::CacheHit,
        _ => return Err(WireError::Malformed("unknown verdict source")),
    };
    let cycles = match cur.u8()? {
        0 => None,
        1 => Some(CycleBreakdown {
            map_encode: cur.u64()?,
            am: cur.u64()?,
            total: cur.u64()?,
        }),
        _ => return Err(WireError::Malformed("bad cycles flag")),
    };
    let n = cur.len(MAX_VEC, 4, "distance count over cap")?;
    let mut distances = Vec::with_capacity(n);
    for _ in 0..n {
        distances.push(cur.u32()?);
    }
    let n = cur.len(MAX_VEC, 4, "query word count over cap")?;
    if n == 0 {
        // `BinaryHv` requires at least one word; a zero here is a
        // corrupt frame, not a verdict.
        return Err(WireError::Malformed("empty query hypervector"));
    }
    let mut words = Vec::with_capacity(n);
    for _ in 0..n {
        words.push(cur.u32()?);
    }
    Ok(Verdict {
        class,
        distances,
        query: BinaryHv::from_words(words),
        cycles,
        source,
    })
}

fn take_stats(cur: &mut Cur<'_>) -> Result<ServerStats, WireError> {
    let completed = cur.u64()?;
    let rejected = cur.u64()?;
    let batches = cur.u64()?;
    let mean_batch = cur.f64()?;
    let p50_us = cur.u64()?;
    let p95_us = cur.u64()?;
    let p99_us = cur.u64()?;
    let latency_max_us = cur.u64()?;
    let latency_mean_us = cur.f64()?;
    let batch_service_max_us = cur.u64()?;
    let batch_service_mean_us = cur.f64()?;
    let elapsed = Duration::from_nanos(cur.u64()?);
    let windows_per_sec = cur.f64()?;
    let deadline_expired = cur.u64()?;
    let retried_batches = cur.u64()?;
    let contained_panics = cur.u64()?;
    let n = cur.len(MAX_VEC, 8, "shard window count over cap")?;
    let mut shard_windows = Vec::with_capacity(n);
    for _ in 0..n {
        shard_windows.push(cur.u64()?);
    }
    let n = cur.len(MAX_VEC, 1, "shard health count over cap")?;
    let mut shard_healthy = Vec::with_capacity(n);
    for _ in 0..n {
        shard_healthy.push(match cur.u8()? {
            0 => false,
            1 => true,
            _ => return Err(WireError::Malformed("bad shard health flag")),
        });
    }
    Ok(ServerStats {
        completed,
        rejected,
        batches,
        mean_batch,
        p50_us,
        p95_us,
        p99_us,
        latency_max_us,
        latency_mean_us,
        batch_service_max_us,
        batch_service_mean_us,
        elapsed,
        windows_per_sec,
        deadline_expired,
        retried_batches,
        contained_panics,
        shard_windows,
        shard_healthy,
        cache_hits: cur.u64()?,
        cache_misses: cur.u64()?,
        cache_evictions: cur.u64()?,
    })
}

/// Decodes a request payload against its header.
///
/// # Errors
///
/// [`WireError::UnknownKind`] if the header's kind is not a request,
/// otherwise any structural [`WireError`] from the payload.
pub fn decode_request(header: &FrameHeader, payload: &[u8]) -> Result<Request, WireError> {
    let mut cur = Cur::new(payload);
    let req = match header.kind {
        kind::CLASSIFY => Request::Classify {
            deadline_us: cur.u64()?,
            window: take_window(&mut cur)?,
        },
        kind::CLASSIFY_BATCH => {
            let deadline_us = cur.u64()?;
            // A window is at least 8 bytes (two length fields).
            let count = {
                let n = cur.u32()?;
                if n > MAX_BATCH {
                    return Err(WireError::Malformed("batch count over cap"));
                }
                let need = (n as usize).saturating_mul(8);
                if cur.remaining() < need {
                    return Err(WireError::Truncated {
                        need,
                        have: cur.remaining(),
                    });
                }
                n as usize
            };
            let mut windows = Vec::with_capacity(count);
            for _ in 0..count {
                windows.push(take_window(&mut cur)?);
            }
            Request::ClassifyBatch {
                deadline_us,
                windows,
            }
        }
        kind::STATS => Request::Stats,
        kind::HEALTH => Request::Health,
        other => return Err(WireError::UnknownKind(other)),
    };
    cur.done()?;
    Ok(req)
}

/// Decodes a response payload against its header.
///
/// # Errors
///
/// [`WireError::UnknownKind`] if the header's kind is not a response,
/// otherwise any structural [`WireError`] from the payload.
pub fn decode_response(header: &FrameHeader, payload: &[u8]) -> Result<Response, WireError> {
    let mut cur = Cur::new(payload);
    let resp = match header.kind {
        kind::R_VERDICT => Response::Verdict(take_verdict(&mut cur)?),
        kind::R_VERDICT_BATCH => {
            // An entry is at least 2 bytes (ok flag + a byte of body).
            let count = cur.len(MAX_BATCH, 2, "batch count over cap")?;
            let mut items = Vec::with_capacity(count);
            for _ in 0..count {
                items.push(match cur.u8()? {
                    0 => Err(take_fault(&mut cur)?),
                    1 => Ok(take_verdict(&mut cur)?),
                    _ => return Err(WireError::Malformed("bad batch entry flag")),
                });
            }
            Response::VerdictBatch(items)
        }
        kind::R_STATS => Response::Stats(take_stats(&mut cur)?),
        kind::R_HEALTH => {
            let serving = match cur.u8()? {
                0 => false,
                1 => true,
                _ => return Err(WireError::Malformed("bad serving flag")),
            };
            let n = cur.len(MAX_VEC, 1, "shard health count over cap")?;
            let mut shard_healthy = Vec::with_capacity(n);
            for _ in 0..n {
                shard_healthy.push(match cur.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(WireError::Malformed("bad shard health flag")),
                });
            }
            Response::Health(HealthReport {
                serving,
                shard_healthy,
            })
        }
        kind::R_ERROR => Response::Error(take_fault(&mut cur)?),
        other => return Err(WireError::UnknownKind(other)),
    };
    cur.done()?;
    Ok(resp)
}
