//! Property-based tests of the HD-computing invariants the paper's
//! algorithm relies on.
//!
//! Properties are checked over many pseudo-randomly drawn cases from the
//! crate's own deterministic generator (the container ships no external
//! property-testing framework, and reproducibility is better served by a
//! fixed seed anyway: every failure is replayable from the case index).

use hdc::bundle::{majority_odd_bitsliced, majority_paper};
use hdc::hv64::{scan_pruned_into, BitslicedBundler};
use hdc::rng::Xoshiro256PlusPlus;
use hdc::{quantize_code, BinaryHv, Bundler, Hv64, TieBreak};

// Miri runs ~3 orders of magnitude slower than native code; a thinner
// case budget keeps the suite in CI's time budget while still walking
// every property through the interpreter.
const CASES: usize = if cfg!(miri) { 8 } else { 64 };

/// Per-case deterministic RNG: independent stream per (test, case).
fn case_rng(test_id: u64, case: u64) -> Xoshiro256PlusPlus {
    Xoshiro256PlusPlus::seed_from_u64(test_id.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ case)
}

fn draw(rng: &mut Xoshiro256PlusPlus, lo: usize, hi: usize) -> usize {
    lo + rng.next_below((hi - lo) as u32) as usize
}

fn hv(words: usize, rng: &mut Xoshiro256PlusPlus) -> BinaryHv {
    BinaryHv::random(words, rng.next_u64())
}

/// Binding is an involution and preserves Hamming distance.
#[test]
fn bind_involution_and_isometry() {
    for case in 0..CASES {
        let mut rng = case_rng(1, case as u64);
        let words = draw(&mut rng, 1, 40);
        let a = hv(words, &mut rng);
        let b = hv(words, &mut rng);
        let c = hv(words, &mut rng);
        assert_eq!(a.bind(&b).bind(&b), a, "case {case}");
        // d(a⊕c, b⊕c) = d(a, b): XOR by a common vector is an isometry.
        assert_eq!(
            a.bind(&c).hamming(&b.bind(&c)),
            a.hamming(&b),
            "case {case}"
        );
    }
}

/// Hamming distance satisfies the metric axioms.
#[test]
fn hamming_is_a_metric() {
    for case in 0..CASES {
        let mut rng = case_rng(2, case as u64);
        let words = draw(&mut rng, 1, 30);
        let a = hv(words, &mut rng);
        let b = hv(words, &mut rng);
        let c = hv(words, &mut rng);
        assert_eq!(a.hamming(&a), 0, "case {case}");
        assert_eq!(a.hamming(&b), b.hamming(&a), "case {case}");
        assert!(
            a.hamming(&c) <= a.hamming(&b) + b.hamming(&c),
            "case {case}: triangle inequality"
        );
    }
}

/// Rotation is a distance-preserving bijection that composes additively
/// modulo the dimension.
#[test]
fn rotation_group_structure() {
    for case in 0..CASES {
        let mut rng = case_rng(3, case as u64);
        let words = draw(&mut rng, 1, 20);
        let a = hv(words, &mut rng);
        let dim = a.dim();
        let j = draw(&mut rng, 0, 700);
        let k = draw(&mut rng, 0, 700);
        assert_eq!(
            a.rotate(j).rotate(k),
            a.rotate((j + k) % dim),
            "case {case}"
        );
        assert_eq!(a.rotate(j).rotate(dim - (j % dim)), a, "case {case}");
        let b = hv(words, &mut rng);
        assert_eq!(
            a.rotate(k).hamming(&b.rotate(k)),
            a.hamming(&b),
            "case {case}: rotation must preserve distance"
        );
    }
}

/// The componentwise majority is the 1-median of the input multiset: no
/// other vector has a smaller total Hamming distance to the inputs.
/// Odd-count majorities are also order-invariant (no tie-break involved).
#[test]
fn majority_minimizes_total_distance() {
    for case in 0..CASES {
        let mut rng = case_rng(4, case as u64);
        let words = draw(&mut rng, 1, 16);
        let n = draw(&mut rng, 1, 9);
        let inputs: Vec<BinaryHv> = (0..n).map(|_| hv(words, &mut rng)).collect();
        let m = majority_paper(&inputs);
        let total = |y: &BinaryHv| -> u64 { inputs.iter().map(|x| u64::from(y.hamming(x))).sum() };
        let m_total = total(&m);
        for x in &inputs {
            assert!(
                m_total <= total(x),
                "case {case}: an input beats the majority"
            );
        }
        for _ in 0..4 {
            let probe = hv(words, &mut rng);
            assert!(
                m_total <= total(&probe),
                "case {case}: a probe beats the majority"
            );
        }
        if n % 2 == 1 {
            let mut reversed = inputs.clone();
            reversed.reverse();
            assert_eq!(
                majority_paper(&reversed),
                m,
                "case {case}: order dependence"
            );
        }
    }
}

/// Bit-sliced majority ≡ counter majority for every odd count.
#[test]
fn bitsliced_equals_counters() {
    for case in 0..CASES {
        let mut rng = case_rng(5, case as u64);
        let words = draw(&mut rng, 1, 12);
        let n = 2 * draw(&mut rng, 0, 6) + 1;
        let inputs: Vec<BinaryHv> = (0..n).map(|_| hv(words, &mut rng)).collect();
        let refs: Vec<&BinaryHv> = inputs.iter().collect();
        let fast = majority_odd_bitsliced(&refs);
        let mut bundler = Bundler::new(words);
        for i in &inputs {
            bundler.add(i);
        }
        assert_eq!(
            fast,
            bundler.majority(TieBreak::Zero),
            "case {case}, n = {n}"
        );
    }
}

/// The quantizer is monotone, total, and hits the extreme levels.
#[test]
fn quantizer_properties() {
    for case in 0..CASES {
        let mut rng = case_rng(6, case as u64);
        let a = (rng.next_u32() & 0xffff) as u16;
        let b = (rng.next_u32() & 0xffff) as u16;
        let levels = draw(&mut rng, 2, 64);
        let qa = quantize_code(a, levels);
        let qb = quantize_code(b, levels);
        assert!(qa < levels, "case {case}");
        if a <= b {
            assert!(qa <= qb, "case {case}: quantizer must be monotone");
        }
        assert_eq!(quantize_code(0, levels), 0, "case {case}");
        assert_eq!(quantize_code(u16::MAX, levels), levels - 1, "case {case}");
    }
}

/// The in-place / borrowing `Hv64` hot-path ops equal their allocating
/// counterparts on every width and shift: `xor_assign` ≡ `bind`,
/// `rotate_into` ≡ `rotate`, and the fused `xor_rotated` ≡
/// `bind(rotate)`.
#[test]
fn hv64_in_place_ops_equal_allocating_ops() {
    for case in 0..CASES {
        let mut rng = case_rng(8, case as u64);
        let words = draw(&mut rng, 1, 40);
        let a = Hv64::from_binary(&hv(words, &mut rng));
        let b = Hv64::from_binary(&hv(words, &mut rng));
        let k = draw(&mut rng, 0, 3 * a.dim());

        let mut x = a.clone();
        x.xor_assign(&b);
        assert_eq!(x, a.bind(&b), "case {case}: xor_assign");

        let mut rotated = b.clone(); // dirty on purpose
        a.rotate_into(k, &mut rotated);
        assert_eq!(rotated, a.rotate(k), "case {case}, k = {k}: rotate_into");

        let mut fused = a.clone();
        fused.xor_rotated(&b, k);
        assert_eq!(
            fused,
            a.bind(&b.rotate(k)),
            "case {case}, k = {k}: xor_rotated"
        );
        // Padding stays clean through the in-place path.
        assert_eq!(
            fused.to_binary().count_ones(),
            fused.count_ones(),
            "case {case}: padding bits leaked"
        );
    }
}

/// The streaming `BitslicedBundler` computes exactly the scalar
/// `majority_paper` of the golden model, for every count (odd, even,
/// single) and across accumulator reuse.
#[test]
fn bitsliced_bundler_equals_scalar_majority() {
    for case in 0..CASES {
        let mut rng = case_rng(9, case as u64);
        let words = draw(&mut rng, 1, 16);
        let mut bundler = BitslicedBundler::new(words);
        let mut out = Hv64::zeros(words);
        // Two rounds through one accumulator: reuse must be stateless.
        for round in 0..2 {
            let n = draw(&mut rng, 1, 10);
            let inputs: Vec<BinaryHv> = (0..n).map(|_| hv(words, &mut rng)).collect();
            let packed: Vec<Hv64> = inputs.iter().map(Hv64::from_binary).collect();
            for input in &packed {
                bundler.add(input);
            }
            bundler.majority_paper_into(&mut out);
            assert_eq!(
                out.to_binary(),
                majority_paper(&inputs),
                "case {case}, round {round}, n = {n}: streaming form"
            );
            // The word-major register-resident form agrees too.
            BitslicedBundler::bundle_paper_into(n, |i| &packed[i], &mut out);
            assert_eq!(
                out.to_binary(),
                majority_paper(&inputs),
                "case {case}, round {round}, n = {n}: word-major form"
            );
        }
    }
}

/// The early-exit AM scan agrees with the full scan on the class for
/// every input — including adversarial tie-heavy prototype sets — and
/// its distances are lower bounds that never undercut the winner.
#[test]
fn pruned_scan_equals_full_scan_class() {
    for case in 0..CASES {
        let mut rng = case_rng(10, case as u64);
        let words = draw(&mut rng, 1, 20);
        let classes = draw(&mut rng, 1, 9);
        let mut prototypes: Vec<Hv64> = (0..classes)
            .map(|_| Hv64::from_binary(&hv(words, &mut rng)))
            .collect();
        // Half the cases get rigged with duplicate and near-duplicate
        // prototypes so exact distance ties are common, stressing the
        // first-minimum tie order.
        if case % 2 == 0 && classes >= 2 {
            let src = draw(&mut rng, 0, classes);
            let dst = draw(&mut rng, 0, classes);
            prototypes[dst] = prototypes[src].clone();
            let near = draw(&mut rng, 0, classes);
            let mut tweaked = prototypes[near].to_binary();
            let bit = draw(&mut rng, 0, tweaked.dim());
            tweaked.set_bit(bit, !tweaked.bit(bit));
            prototypes[near] = Hv64::from_binary(&tweaked);
        }
        let query = Hv64::from_binary(&hv(words, &mut rng));
        let full: Vec<u32> = prototypes.iter().map(|p| p.hamming(&query)).collect();
        let expected_class = full
            .iter()
            .enumerate()
            .min_by_key(|&(_, &d)| d)
            .map(|(i, _)| i)
            .unwrap();
        let mut pruned = Vec::new();
        let class = scan_pruned_into(&prototypes, &query, &mut pruned);
        assert_eq!(class, expected_class, "case {case}: class diverged");
        assert_eq!(
            pruned[class], full[class],
            "case {case}: winning distance must be exact"
        );
        for (k, (&p, &f)) in pruned.iter().zip(&full).enumerate() {
            assert!(p <= f, "case {case}, class {k}: not a lower bound");
            assert!(
                k == class || p >= full[class],
                "case {case}, class {k}: undercuts the winner"
            );
        }
    }
}

/// Bit-flip count equals the resulting Hamming distance (fault injection
/// is exact).
#[test]
fn fault_injection_is_exact() {
    for case in 0..CASES {
        let mut rng = case_rng(7, case as u64);
        let words = draw(&mut rng, 1, 20);
        let a = hv(words, &mut rng);
        let frac = draw(&mut rng, 0, 100);
        let flips = a.dim() * frac / 100;
        let seed = rng.next_u64();
        assert_eq!(
            a.with_bit_flips(flips, seed).hamming(&a) as usize,
            flips,
            "case {case}"
        );
    }
}
