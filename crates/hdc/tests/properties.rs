//! Property-based tests of the HD-computing invariants the paper's
//! algorithm relies on.

use proptest::prelude::*;

use hdc::bundle::{majority_odd_bitsliced, majority_paper};
use hdc::{quantize_code, BinaryHv, Bundler, TieBreak};

fn hv(words: usize, seed: u64) -> BinaryHv {
    BinaryHv::random(words, seed)
}

proptest! {
    /// Binding is an involution and preserves Hamming distance.
    #[test]
    fn bind_involution_and_isometry(words in 1usize..40, s1 in 0u64..1000, s2 in 0u64..1000, s3 in 0u64..1000) {
        let a = hv(words, s1);
        let b = hv(words, s2);
        let c = hv(words, s3);
        prop_assert_eq!(a.bind(&b).bind(&b), a.clone());
        // d(a⊕c, b⊕c) = d(a, b): XOR by a common vector is an isometry.
        prop_assert_eq!(a.bind(&c).hamming(&b.bind(&c)), a.hamming(&b));
    }

    /// Hamming distance satisfies the metric axioms.
    #[test]
    fn hamming_is_a_metric(words in 1usize..30, s1 in 0u64..500, s2 in 0u64..500, s3 in 0u64..500) {
        let a = hv(words, s1);
        let b = hv(words, s2);
        let c = hv(words, s3);
        prop_assert_eq!(a.hamming(&a), 0);
        prop_assert_eq!(a.hamming(&b), b.hamming(&a));
        prop_assert!(a.hamming(&c) <= a.hamming(&b) + b.hamming(&c));
        if s1 != s2 && words > 2 {
            prop_assert!(a.hamming(&b) > 0, "distinct seeds collide");
        }
    }

    /// Rotation is a distance-preserving bijection that composes
    /// additively modulo the dimension.
    #[test]
    fn rotation_group_structure(words in 1usize..20, s in 0u64..500, j in 0usize..700, k in 0usize..700) {
        let a = hv(words, s);
        let dim = a.dim();
        prop_assert_eq!(a.rotate(j).rotate(k), a.rotate((j + k) % dim));
        prop_assert_eq!(a.rotate(j).rotate(dim - (j % dim)), a.clone());
        let b = hv(words, s ^ 0xABCD);
        prop_assert_eq!(a.rotate(k).hamming(&b.rotate(k)), a.hamming(&b));
    }

    /// The componentwise majority is the 1-median of the input multiset:
    /// no other vector has a smaller total Hamming distance to the
    /// inputs. Odd-count majorities are also order-invariant (no
    /// tie-break involved).
    #[test]
    fn majority_minimizes_total_distance(words in 1usize..16, n in 1usize..9, seed in 0u64..200) {
        let inputs: Vec<BinaryHv> = (0..n).map(|i| hv(words, seed * 31 + i as u64)).collect();
        let m = majority_paper(&inputs);
        let total = |y: &BinaryHv| -> u64 {
            inputs.iter().map(|x| u64::from(y.hamming(x))).sum()
        };
        let m_total = total(&m);
        for x in &inputs {
            prop_assert!(m_total <= total(x));
        }
        for probe_seed in 0..4u64 {
            let probe = hv(words, seed ^ (0xF00D + probe_seed));
            prop_assert!(m_total <= total(&probe));
        }
        if n % 2 == 1 {
            let mut reversed = inputs.clone();
            reversed.reverse();
            prop_assert_eq!(majority_paper(&reversed), m);
        }
    }

    /// Bit-sliced majority ≡ counter majority for every odd count.
    #[test]
    fn bitsliced_equals_counters(words in 1usize..12, half in 0usize..6, seed in 0u64..200) {
        let n = 2 * half + 1;
        let inputs: Vec<BinaryHv> = (0..n).map(|i| hv(words, seed * 17 + i as u64)).collect();
        let refs: Vec<&BinaryHv> = inputs.iter().collect();
        let fast = majority_odd_bitsliced(&refs);
        let mut bundler = Bundler::new(words);
        for i in &inputs {
            bundler.add(i);
        }
        prop_assert_eq!(fast, bundler.majority(TieBreak::Zero));
    }

    /// The quantizer is monotone, total, and hits the extreme levels.
    #[test]
    fn quantizer_properties(a in 0u16.., b in 0u16.., levels in 2usize..64) {
        let qa = quantize_code(a, levels);
        let qb = quantize_code(b, levels);
        prop_assert!(qa < levels);
        if a <= b {
            prop_assert!(qa <= qb);
        }
        prop_assert_eq!(quantize_code(0, levels), 0);
        prop_assert_eq!(quantize_code(u16::MAX, levels), levels - 1);
    }

    /// Bit-flip count equals the resulting Hamming distance (fault
    /// injection is exact).
    #[test]
    fn fault_injection_is_exact(words in 1usize..20, seed in 0u64..300, frac in 0u32..100) {
        let a = hv(words, seed);
        let flips = (a.dim() as u32 * frac / 100) as usize;
        prop_assert_eq!(a.with_bit_flips(flips, seed ^ 1).hamming(&a) as usize, flips);
    }
}
