//! Property tests pinning every runtime-dispatched SIMD kernel to the
//! scalar golden model, exercised through the public `Hv64` API under
//! **each** kernel level available on this machine.
//!
//! Two override mechanisms are covered:
//!
//! * the **ctor hook** [`Simd::set_active`], which this suite uses to
//!   flip the process-wide level between the detected path and the
//!   forced-portable path mid-run;
//! * the **env hook** `PULP_HD_FORCE_SCALAR=1`, covered by the CI job
//!   that re-runs the whole workspace test suite with the portable
//!   level pinned (see `.github/workflows/ci.yml`).
//!
//! Per-kernel slice-level equivalence (explicit `Simd::Portable` /
//! `Simd::Avx2` calls against naive references) lives in the `simd`
//! module's unit tests; this file checks the same kernels end to end —
//! bind, fused bind-rotate, both bundling forms, and the distance
//! scans — against the `u32` golden model.

use hdc::bundle::majority_paper;
use hdc::encoder::ngram;
use hdc::hv64::{
    majority_paper64, ngram64, scan_pruned_into, BitslicedBundler, CounterBundler, Hv64,
};
use hdc::rng::Xoshiro256PlusPlus;
use hdc::{BinaryHv, Bundler, Simd, TieBreak};

// Miri runs ~3 orders of magnitude slower than native code; shrink the
// drawn-case budget (but keep most directed widths) under the
// interpreter.
const CASES: usize = if cfg!(miri) { 4 } else { 32 };

/// Every kernel level this machine can execute, portable first.
fn levels() -> Vec<Simd> {
    let mut all = vec![Simd::Portable];
    #[cfg(target_arch = "x86_64")]
    if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("popcnt") {
        all.push(Simd::Avx2);
    }
    all
}

/// Runs `check` once per available level, flipping the process-wide
/// dispatch through the ctor override hook and restoring the detected
/// level afterwards (drop-safe restoration is overkill here: a failed
/// assert ends the process anyway).
fn for_each_level(mut check: impl FnMut(Simd)) {
    for level in levels() {
        Simd::set_active(level);
        check(level);
    }
    Simd::set_active(Simd::detect());
}

#[test]
fn bind_and_hamming_match_golden_under_every_level() {
    for_each_level(|level| {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(0x01);
        for case in 0..CASES {
            let n_words32 = 1 + rng.next_below(24) as usize;
            let a = BinaryHv::random(n_words32, rng.next_u64());
            let b = BinaryHv::random(n_words32, rng.next_u64());
            let (a64, b64) = (Hv64::from_binary(&a), Hv64::from_binary(&b));
            assert_eq!(
                a64.bind(&b64).to_binary(),
                a.bind(&b),
                "{level:?} case {case}: bind"
            );
            assert_eq!(
                a64.hamming(&b64),
                a.hamming(&b),
                "{level:?} case {case}: hamming"
            );
            assert_eq!(
                a64.count_ones(),
                a.count_ones(),
                "{level:?} case {case}: popcount"
            );
        }
    });
}

#[test]
fn rotation_and_fused_bind_rotate_match_golden_under_every_level() {
    for_each_level(|level| {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(0x02);
        for case in 0..CASES {
            let n_words32 = 1 + rng.next_below(24) as usize;
            let a = BinaryHv::random(n_words32, rng.next_u64());
            let b = BinaryHv::random(n_words32, rng.next_u64());
            let (a64, b64) = (Hv64::from_binary(&a), Hv64::from_binary(&b));
            let k = rng.next_below(2 * a.dim() as u32 + 1) as usize;
            assert_eq!(
                a64.rotate(k).to_binary(),
                a.rotate(k),
                "{level:?} case {case}: rotate by {k}"
            );
            let mut fused = a64.clone();
            fused.xor_rotated(&b64, k);
            assert_eq!(
                fused.to_binary(),
                a.bind(&b.rotate(k)),
                "{level:?} case {case}: xor_rotated by {k}"
            );
        }
    });
}

#[test]
fn bundling_planes_match_golden_under_every_level() {
    for_each_level(|level| {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(0x03);
        // 1..=12 inputs crosses the identity, OR, maj-3, maj-5 (with
        // and without the tie vector), and generic ripple-counter arms.
        for n in 1usize..=12 {
            let n_words32 = 1 + rng.next_below(24) as usize;
            let hvs: Vec<BinaryHv> = (0..n)
                .map(|_| BinaryHv::random(n_words32, rng.next_u64()))
                .collect();
            let packed: Vec<Hv64> = hvs.iter().map(Hv64::from_binary).collect();
            let expected = majority_paper(&hvs);
            // Word-major register-resident form.
            let mut out = Hv64::zeros(n_words32);
            BitslicedBundler::bundle_paper_into(n, |i| &packed[i], &mut out);
            assert_eq!(
                out.to_binary(),
                expected,
                "{level:?} n {n}: bundle_paper_into"
            );
            // Streaming heap-plane form.
            let mut bundler = BitslicedBundler::new(n_words32);
            for hv in &packed {
                bundler.add(hv);
            }
            bundler.majority_paper_into(&mut out);
            assert_eq!(
                out.to_binary(),
                expected,
                "{level:?} n {n}: streaming bundler"
            );
            // Allocating reference form.
            let refs: Vec<&Hv64> = packed.iter().collect();
            assert_eq!(
                majority_paper64(&refs).to_binary(),
                expected,
                "{level:?} n {n}: majority_paper64"
            );
        }
    });
}

#[test]
fn ngram_encoding_matches_golden_under_every_level() {
    for_each_level(|level| {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(0x04);
        for n in 1usize..=5 {
            let n_words32 = 1 + rng.next_below(24) as usize;
            let hvs: Vec<BinaryHv> = (0..n)
                .map(|_| BinaryHv::random(n_words32, rng.next_u64()))
                .collect();
            let packed: Vec<Hv64> = hvs.iter().map(Hv64::from_binary).collect();
            assert_eq!(
                ngram64(&packed).to_binary(),
                ngram(&hvs),
                "{level:?} N = {n}"
            );
        }
    });
}

#[test]
fn distance_scans_match_golden_under_every_level() {
    for_each_level(|level| {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(0x05);
        for case in 0..CASES {
            let n_words32 = 1 + rng.next_below(24) as usize;
            let classes = 1 + rng.next_below(8) as usize;
            let hvs: Vec<BinaryHv> = (0..classes)
                .map(|_| BinaryHv::random(n_words32, rng.next_u64()))
                .collect();
            let prototypes: Vec<Hv64> = hvs.iter().map(Hv64::from_binary).collect();
            let query32 = BinaryHv::random(n_words32, rng.next_u64());
            let query = Hv64::from_binary(&query32);
            let full: Vec<u32> = hvs.iter().map(|p| p.hamming(&query32)).collect();
            let expected_class = full
                .iter()
                .enumerate()
                .min_by_key(|&(_, &d)| d)
                .map(|(i, _)| i)
                .unwrap();
            let mut distances = Vec::new();
            let class = scan_pruned_into(&prototypes, &query, &mut distances);
            assert_eq!(class, expected_class, "{level:?} case {case}: class");
            assert_eq!(
                distances[class], full[class],
                "{level:?} case {case}: winning distance exact"
            );
            for (k, (&pruned, &exact)) in distances.iter().zip(&full).enumerate() {
                assert!(
                    pruned <= exact,
                    "{level:?} case {case} class {k}: lower bound"
                );
                assert!(
                    k == class || pruned >= full[class],
                    "{level:?} case {case} class {k}: cannot undercut the winner"
                );
            }
        }
    });
}

/// The training accumulator (sideways-addition counter planes + seeded
/// threshold) matches the scalar training `Bundler` under every kernel
/// level, including split-and-merge accumulation and forced exact ties.
#[test]
fn training_counters_match_golden_under_every_level() {
    for_each_level(|level| {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(0x07);
        for case in 0..CASES.div_ceil(2) {
            let n_words32 = 1 + rng.next_below(24) as usize;
            let n = 1 + rng.next_below(12) as usize;
            // Draw from a small pool so repeats force exact ties.
            let pool: Vec<BinaryHv> = (0..3)
                .map(|_| BinaryHv::random(n_words32, rng.next_u64()))
                .collect();
            let inputs: Vec<&BinaryHv> =
                (0..n).map(|_| &pool[rng.next_below(3) as usize]).collect();
            let tie = BinaryHv::random(n_words32, rng.next_u64());

            let mut scalar = Bundler::new(n_words32);
            let mut packed = CounterBundler::new(n_words32);
            // Split the stream across two accumulators and merge — the
            // worker-pool reduction path.
            let split = rng.next_below(n as u32 + 1) as usize;
            let mut partial = CounterBundler::new(n_words32);
            for (i, hv) in inputs.iter().enumerate() {
                scalar.add(hv);
                let packed_hv = Hv64::from_binary(hv);
                if i < split {
                    packed.add(&packed_hv);
                } else {
                    partial.add(&packed_hv);
                }
            }
            packed.merge(&partial);
            let mut out = Hv64::zeros(n_words32);
            packed.majority_seeded_into(&Hv64::from_binary(&tie), &mut out);
            assert_eq!(
                out.to_binary(),
                scalar.majority(TieBreak::Vector(&tie)),
                "{level:?} case {case}: n = {n}, split {split}"
            );
        }
    });
}

/// Directed tail-masking coverage: odd `n_words32` widths leave a
/// half-`u64` tail in the packed representation, and the counter planes
/// of [`CounterBundler::merge`] / `majority_seeded_into` must mask it —
/// adversarial all-ones inputs (every canonical bit set, tail included)
/// and all-ones tie vectors try to smuggle votes into the padding, and
/// the thresholded output's padding must still come back clean under
/// every kernel level.
#[test]
fn counter_tail_masking_survives_all_ones_inputs_at_odd_widths() {
    for_each_level(|level| {
        let widths: &[usize] = if cfg!(miri) {
            &[1, 3, 5] // the per-bit fill below crawls under Miri
        } else {
            &[1, 3, 5, 7, 21, 313]
        };
        for &n_words32 in widths {
            let dim = n_words32 * 32;
            let mut ones = BinaryHv::zeros(n_words32);
            for b in 0..dim {
                ones.set_bit(b, true);
            }
            let ones64 = Hv64::from_binary(&ones);
            let mut rng = Xoshiro256PlusPlus::seed_from_u64(0x7A11 + n_words32 as u64);
            let noise = BinaryHv::random(n_words32, rng.next_u64());
            let noise64 = Hv64::from_binary(&noise);

            // Two all-ones + one noise in the main accumulator, one of
            // each merged in from a partial: count(ones-bit) = 3 of 4 →
            // majority one; noise-only bits are 2 of 4 → exact tie,
            // resolved by the (also all-ones) tie vector.
            let mut main = CounterBundler::new(n_words32);
            main.add(&ones64);
            main.add(&noise64);
            let mut partial = CounterBundler::new(n_words32);
            partial.add(&ones64);
            partial.add(&noise64);
            main.merge(&partial);

            let mut scalar = Bundler::new(n_words32);
            for hv in [&ones, &noise, &ones, &noise] {
                scalar.add(hv);
            }

            let mut out = Hv64::from_binary(&ones); // dirty start: output must be overwritten
            main.majority_seeded_into(&ones64, &mut out);
            assert_eq!(
                out.to_binary(),
                scalar.majority(TieBreak::Vector(&ones)),
                "{level:?}: {n_words32} u32 words"
            );
            // The packed padding itself stays zero — a dirty tail would
            // corrupt every later hamming/bind on this vector.
            if n_words32 % 2 == 1 {
                assert_eq!(
                    out.words()[out.n_words() - 1] >> 32,
                    0,
                    "{level:?}: {n_words32} u32 words leaked into the padding"
                );
            }
        }
    });
}

/// The pruned scan's partial distances are level-independent: the
/// portable and detected paths abandon at the same 512-bit block
/// boundaries, so the whole distance vector — not just the class — is
/// identical across levels.
#[test]
fn pruned_scan_distances_are_identical_across_levels() {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(0x06);
    for case in 0..CASES {
        let n_words32 = 1 + rng.next_below(32) as usize;
        let classes = 2 + rng.next_below(7) as usize;
        let prototypes: Vec<Hv64> = (0..classes)
            .map(|_| Hv64::from_binary(&BinaryHv::random(n_words32, rng.next_u64())))
            .collect();
        let query = Hv64::from_binary(&BinaryHv::random(n_words32, rng.next_u64()));
        let mut reference = Vec::new();
        Simd::set_active(Simd::Portable);
        let ref_class = scan_pruned_into(&prototypes, &query, &mut reference);
        let mut got = Vec::new();
        for level in levels() {
            Simd::set_active(level);
            let class = scan_pruned_into(&prototypes, &query, &mut got);
            assert_eq!(class, ref_class, "case {case}: {level:?} class");
            assert_eq!(got, reference, "case {case}: {level:?} distance vector");
        }
        Simd::set_active(Simd::detect());
    }
}
