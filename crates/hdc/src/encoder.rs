//! Spatial and temporal encoders.
//!
//! The spatial encoder represents the set of all channel–value pairs at
//! one timestamp: each channel's item hypervector is *bound* (XOR) to the
//! hypervector of its quantized signal level, and the bound vectors are
//! *bundled* (componentwise majority) into one spatial hypervector
//! `Sₜ = [(E₁⊕V₁ᵗ) + … + (E𝒸⊕V𝒸ᵗ)]`.
//!
//! The temporal encoder turns a sequence of `N` spatial hypervectors into
//! an N-gram by rotation and binding:
//! `Sₜ ⊕ ρ¹Sₜ₊₁ ⊕ ρ²Sₜ₊₂ ⊕ … ⊕ ρᴺ⁻¹Sₜ₊ₙ₋₁`, and a classification window's
//! N-grams are bundled into the final query hypervector.

use crate::bundle::majority_paper;
use crate::hv::BinaryHv;
use crate::item_memory::{quantize_code, ContinuousItemMemory, ItemMemory};
use crate::rng::derive_seed;

/// Spatial encoder: fixed IM + CIM plus the bind-and-bundle step.
///
/// # Examples
///
/// ```
/// use hdc::SpatialEncoder;
///
/// let enc = SpatialEncoder::new(4, 22, 313, 42);
/// let calm = enc.encode_codes(&[100, 200, 150, 120]);
/// let tense = enc.encode_codes(&[60_000, 58_000, 61_000, 59_500]);
/// // Different channel activity maps far apart in HD space.
/// assert!(calm.normalized_hamming(&tense) > 0.25);
/// ```
#[derive(Debug, Clone)]
pub struct SpatialEncoder {
    im: ItemMemory,
    cim: ContinuousItemMemory,
    channels: usize,
}

impl SpatialEncoder {
    /// Creates an encoder for `channels` input channels quantized to
    /// `n_levels` amplitude levels, with hypervectors of `n_words` words.
    ///
    /// IM and CIM seeds are derived from `master_seed` (streams 1 and 2).
    ///
    /// # Panics
    ///
    /// Panics if `channels == 0`, `n_levels < 2`, or `n_words == 0`.
    #[must_use]
    pub fn new(channels: usize, n_levels: usize, n_words: usize, master_seed: u64) -> Self {
        assert!(channels > 0, "spatial encoder needs at least one channel");
        Self::from_parts(
            ItemMemory::new(channels, n_words, derive_seed(master_seed, 1)),
            ContinuousItemMemory::new(n_levels, n_words, derive_seed(master_seed, 2)),
        )
    }

    /// Wraps existing item memories (e.g. ones extracted from a trained
    /// model) in an encoder; the channel count is the IM's length.
    ///
    /// # Panics
    ///
    /// Panics if `im` and `cim` hypervector widths differ.
    #[must_use]
    pub fn from_parts(im: ItemMemory, cim: ContinuousItemMemory) -> Self {
        assert_eq!(
            im.get(0).n_words(),
            cim.get(0).n_words(),
            "IM and CIM width mismatch: {} vs {} words",
            im.get(0).n_words(),
            cim.get(0).n_words()
        );
        let channels = im.len();
        Self { im, cim, channels }
    }

    /// Number of input channels.
    #[must_use]
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Number of quantization levels.
    #[must_use]
    pub fn n_levels(&self) -> usize {
        self.cim.n_levels()
    }

    /// Hypervector width in words.
    #[must_use]
    pub fn n_words(&self) -> usize {
        self.im.get(0).n_words()
    }

    /// The channel item memory (exposed so the accelerator loader can copy
    /// it into simulated L2).
    #[must_use]
    pub fn im(&self) -> &ItemMemory {
        &self.im
    }

    /// The level continuous item memory.
    #[must_use]
    pub fn cim(&self) -> &ContinuousItemMemory {
        &self.cim
    }

    /// Quantizes one sample per channel and encodes the spatial
    /// hypervector.
    ///
    /// # Panics
    ///
    /// Panics if `codes.len() != self.channels()`.
    #[must_use]
    pub fn encode_codes(&self, codes: &[u16]) -> BinaryHv {
        let levels: Vec<usize> = codes
            .iter()
            .map(|&c| quantize_code(c, self.cim.n_levels()))
            .collect();
        self.encode_levels(&levels)
    }

    /// Encodes already-quantized level indices.
    ///
    /// With an even channel count, the majority vote includes the paper's
    /// tie-break vector (XOR of the first two bound hypervectors).
    ///
    /// # Panics
    ///
    /// Panics if `levels.len() != self.channels()` or any level index is
    /// out of range.
    #[must_use]
    pub fn encode_levels(&self, levels: &[usize]) -> BinaryHv {
        assert_eq!(
            levels.len(),
            self.channels,
            "expected {} channel levels, got {}",
            self.channels,
            levels.len()
        );
        let bound: Vec<BinaryHv> = levels
            .iter()
            .enumerate()
            .map(|(ch, &lvl)| self.im.get(ch).bind(self.cim.get(lvl)))
            .collect();
        majority_paper(&bound)
    }
}

/// Encodes a sequence of `hvs.len()` hypervectors into one N-gram:
/// `hvs[0] ⊕ ρ¹hvs[1] ⊕ … ⊕ ρᴺ⁻¹hvs[N−1]`.
///
/// # Panics
///
/// Panics if `hvs` is empty or widths differ.
///
/// # Examples
///
/// ```
/// use hdc::{BinaryHv, encoder::ngram};
///
/// let a = BinaryHv::random(313, 1);
/// let b = BinaryHv::random(313, 2);
/// // Order matters: (a, b) and (b, a) give different sequence codes.
/// let ab = ngram(&[a.clone(), b.clone()]);
/// let ba = ngram(&[b, a]);
/// assert!(ab.normalized_hamming(&ba) > 0.4);
/// ```
#[must_use]
pub fn ngram(hvs: &[BinaryHv]) -> BinaryHv {
    assert!(!hvs.is_empty(), "n-gram of an empty sequence is undefined");
    let mut out = hvs[0].clone();
    for (k, hv) in hvs.iter().enumerate().skip(1) {
        out.bind_assign(&hv.rotate(k));
    }
    out
}

/// Temporal encoder: slides an N-gram window over the spatial
/// hypervectors of a classification window and bundles the N-grams into
/// the query hypervector.
///
/// # Examples
///
/// ```
/// use hdc::{BinaryHv, TemporalEncoder};
///
/// let enc = TemporalEncoder::new(3);
/// let spatials: Vec<BinaryHv> = (0..5).map(|s| BinaryHv::random(313, s)).collect();
/// let query = enc.encode(&spatials);
/// assert_eq!(query.n_words(), 313);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TemporalEncoder {
    n: usize,
}

impl TemporalEncoder {
    /// Creates a temporal encoder with N-gram size `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "n-gram size must be at least 1");
        Self { n }
    }

    /// The N-gram size.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of N-grams produced from a window of `window_len` samples.
    ///
    /// # Panics
    ///
    /// Panics if the window is shorter than the N-gram size.
    #[must_use]
    pub fn n_grams_in(&self, window_len: usize) -> usize {
        assert!(
            window_len >= self.n,
            "window of {window_len} samples cannot hold an {}-gram",
            self.n
        );
        window_len - self.n + 1
    }

    /// Encodes a window of spatial hypervectors into the query
    /// hypervector: all `window_len − N + 1` N-grams, bundled with the
    /// paper's majority (XOR tie-break when the count is even).
    ///
    /// # Panics
    ///
    /// Panics if the window is shorter than the N-gram size.
    #[must_use]
    pub fn encode(&self, spatials: &[BinaryHv]) -> BinaryHv {
        let count = self.n_grams_in(spatials.len());
        let grams: Vec<BinaryHv> = (0..count)
            .map(|t| ngram(&spatials[t..t + self.n]))
            .collect();
        majority_paper(&grams)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spatial_encoding_is_deterministic() {
        let enc = SpatialEncoder::new(4, 22, 313, 7);
        let codes = [100u16, 40_000, 20_000, 65_000];
        assert_eq!(enc.encode_codes(&codes), enc.encode_codes(&codes));
    }

    #[test]
    fn spatial_output_similar_to_every_bound_input() {
        let enc = SpatialEncoder::new(5, 22, 313, 7);
        let levels = [0usize, 5, 10, 15, 21];
        let s = enc.encode_levels(&levels);
        for (ch, &lvl) in levels.iter().enumerate() {
            let bound = enc.im().get(ch).bind(enc.cim().get(lvl));
            let d = s.normalized_hamming(&bound);
            assert!(d < 0.40, "channel {ch} distance {d}");
        }
    }

    #[test]
    fn spatial_sensitive_to_level_changes() {
        let enc = SpatialEncoder::new(4, 22, 313, 7);
        let a = enc.encode_levels(&[0, 0, 0, 0]);
        let b = enc.encode_levels(&[21, 21, 21, 21]);
        assert!(a.normalized_hamming(&b) > 0.3);
    }

    #[test]
    fn spatial_smooth_in_level_space() {
        // Nearby levels → nearby spatial hypervectors (CIM locality
        // survives the encoder).
        let enc = SpatialEncoder::new(4, 22, 313, 7);
        let a = enc.encode_levels(&[10, 10, 10, 10]);
        let near = enc.encode_levels(&[11, 10, 10, 10]);
        let far = enc.encode_levels(&[21, 0, 21, 0]);
        assert!(a.normalized_hamming(&near) < a.normalized_hamming(&far));
    }

    #[test]
    #[should_panic(expected = "expected 4 channel levels")]
    fn wrong_channel_count_panics() {
        let enc = SpatialEncoder::new(4, 22, 16, 7);
        let _ = enc.encode_levels(&[1, 2, 3]);
    }

    #[test]
    fn unigram_is_identity() {
        let a = BinaryHv::random(32, 1);
        assert_eq!(ngram(std::slice::from_ref(&a)), a);
    }

    #[test]
    fn ngram_matches_manual_expansion() {
        let a = BinaryHv::random(16, 1);
        let b = BinaryHv::random(16, 2);
        let c = BinaryHv::random(16, 3);
        let manual = a.bind(&b.rotate(1)).bind(&c.rotate(2));
        assert_eq!(ngram(&[a, b, c]), manual);
    }

    #[test]
    fn ngram_is_order_sensitive() {
        let a = BinaryHv::random(313, 1);
        let b = BinaryHv::random(313, 2);
        let c = BinaryHv::random(313, 3);
        let abc = ngram(&[a.clone(), b.clone(), c.clone()]);
        let cba = ngram(&[c, b, a]);
        assert!(abc.normalized_hamming(&cba) > 0.4);
    }

    #[test]
    fn temporal_encoder_window_counts() {
        let enc = TemporalEncoder::new(3);
        assert_eq!(enc.n_grams_in(3), 1);
        assert_eq!(enc.n_grams_in(7), 5);
    }

    #[test]
    fn temporal_n1_is_plain_bundle_of_spatials() {
        let enc = TemporalEncoder::new(1);
        let spatials: Vec<BinaryHv> = (0..5).map(|s| BinaryHv::random(64, s)).collect();
        let q = enc.encode(&spatials);
        assert_eq!(q, majority_paper(&spatials));
    }

    #[test]
    fn temporal_window_equal_to_n_returns_single_gram() {
        let enc = TemporalEncoder::new(4);
        let spatials: Vec<BinaryHv> = (0..4).map(|s| BinaryHv::random(64, s)).collect();
        assert_eq!(enc.encode(&spatials), ngram(&spatials));
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn short_window_panics() {
        let enc = TemporalEncoder::new(5);
        let spatials: Vec<BinaryHv> = (0..3).map(|s| BinaryHv::random(8, s)).collect();
        let _ = enc.encode(&spatials);
    }

    #[test]
    fn query_similar_to_constituent_ngrams() {
        let enc = TemporalEncoder::new(2);
        let spatials: Vec<BinaryHv> = (0..6).map(|s| BinaryHv::random(313, s)).collect();
        let q = enc.encode(&spatials);
        for t in 0..5 {
            let g = ngram(&spatials[t..t + 2]);
            assert!(q.normalized_hamming(&g) < 0.45, "gram {t}");
        }
    }
}
