//! The differential-twin registry: every `#[target_feature]` kernel in
//! [`crate::simd`], paired with the portable reference it must match
//! bit for bit.
//!
//! This registry is machine-checked from two directions:
//!
//! * `pulp-hd-audit lint` parses the workspace for `#[target_feature]`
//!   functions and fails if any of them is missing from this file — a
//!   new SIMD kernel cannot land without declaring its portable twin
//!   (or declaring itself a helper that is only reachable through a
//!   registered kernel).
//! * `pulp-hd-audit fuzz` iterates [`KERNEL_TWINS`] and runs a seeded
//!   differential fuzzer per entry (AVX2 vs portable vs an independent
//!   naive reference, at adversarial widths), and fails if an entry has
//!   no fuzzer — so registration here is a commitment to differential
//!   coverage, not just a name in a list.
//!
//! Names are the bare function names of the `#[target_feature]`
//! specializations in `crate::simd::avx2`; twins name the matching
//! portable reference. The dispatch methods on
//! [`Simd`](crate::simd::Simd) are the public seam through which both
//! sides are callable for side-by-side testing.

/// One registered SIMD kernel: the `#[target_feature]` specialization
/// and the portable reference it is differentially fuzzed against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelTwin {
    /// Bare name of the `#[target_feature]` kernel function
    /// (`crate::simd::avx2`).
    pub kernel: &'static str,
    /// Bare name of its portable reference (`crate::simd::portable`).
    pub twin: &'static str,
}

/// Every dispatched SIMD kernel and its portable twin. Order matches
/// the dispatch methods on [`Simd`](crate::simd::Simd).
pub const KERNEL_TWINS: &[KernelTwin] = &[
    KernelTwin {
        kernel: "xor_into",
        twin: "xor_into",
    },
    KernelTwin {
        kernel: "popcount",
        twin: "popcount",
    },
    KernelTwin {
        kernel: "hamming",
        twin: "hamming",
    },
    KernelTwin {
        kernel: "hamming_bounded",
        twin: "hamming_bounded",
    },
    KernelTwin {
        kernel: "hamming_threshold",
        twin: "hamming_threshold",
    },
    KernelTwin {
        kernel: "or_into",
        twin: "or_into",
    },
    KernelTwin {
        kernel: "maj3_into",
        twin: "maj3_into",
    },
    KernelTwin {
        kernel: "maj5_into",
        twin: "maj5_into",
    },
    KernelTwin {
        kernel: "maj5_tie_into",
        twin: "maj5_tie_into",
    },
    KernelTwin {
        kernel: "ripple_majority_into",
        twin: "ripple_majority_from",
    },
    KernelTwin {
        kernel: "csa_step",
        twin: "csa_step",
    },
    KernelTwin {
        kernel: "counter_majority_into",
        twin: "counter_majority_from",
    },
    KernelTwin {
        kernel: "xor_rotated_into",
        twin: "xor_rotated_into",
    },
];

/// `#[target_feature]` helper functions that are not kernels in their
/// own right: they are only reachable through the registered kernels
/// above, whose differential fuzzers therefore cover them. Listing a
/// helper here exempts it from the twin requirement — the audit lint
/// still fails on any `#[target_feature]` function named in neither
/// list.
pub const KERNEL_HELPERS: &[&str] = &[
    "loadu",
    "storeu",
    "popcnt_epi64",
    "hsum_epi64",
    "full_add_v",
    "maj5_v",
    "ripple_v",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_no_duplicate_kernels() {
        let mut seen = std::collections::HashSet::new();
        for twin in KERNEL_TWINS {
            assert!(seen.insert(twin.kernel), "duplicate kernel {}", twin.kernel);
        }
        for helper in KERNEL_HELPERS {
            assert!(seen.insert(helper), "helper {helper} shadows a kernel");
        }
    }
}
