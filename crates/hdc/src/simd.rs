//! Runtime-dispatched SIMD kernels for the `u64`-packed hot path.
//!
//! Every throughput-critical word loop of [`crate::hv64`] — XOR-bind,
//! the fused bind-rotate, the carry-save majority networks, and the
//! popcount Hamming distance / early-exit associative-memory scan —
//! lives here twice:
//!
//! * an **AVX2/POPCNT** specialization (`unsafe fn` +
//!   `#[target_feature]`, 256-bit lanes, `vpshufb` nibble popcount),
//!   used when the CPU supports it;
//! * a **portable** fallback written as 4×`u64` unrolled safe Rust that
//!   the auto-vectorizer handles on any target — and that doubles as
//!   the scalar reference the SIMD paths are property-tested against.
//!
//! The level is picked **once per process** at first use via
//! [`is_x86_feature_detected!`]; `cargo build` on stable works
//! everywhere because nothing is gated at compile time. Both levels are
//! bit-identical on every kernel (the property suites pin this), so
//! dispatch is purely a performance decision.
//!
//! Selection can be overridden:
//!
//! * **Environment:** setting `PULP_HD_FORCE_SCALAR=1` before first use
//!   forces [`Simd::Portable`] for the whole process — CI runs the full
//!   test suite this way so the fallback cannot rot.
//! * **Code:** [`Simd::set_active`] swaps the process-wide level at any
//!   point (safe, because the levels agree bit for bit), and every
//!   kernel is also callable on an explicit level (`Simd::Portable
//!   .hamming(..)`) for side-by-side testing.
//!
//! Adding a new specialization (e.g. AVX-512 or NEON) means: a new
//! enum variant behind `cfg(target_arch)`, a sibling intrinsics module
//! implementing the same kernel set, one arm per dispatch method, and a
//! detection branch in [`Simd::detect`] — the property tests in
//! `tests/simd_kernels.rs` then pin the new path to the portable
//! reference automatically.

use core::sync::atomic::{AtomicU8, Ordering};

/// Output words per early-exit check of the bounded Hamming scan
/// (512 bits). Both levels abandon prototypes at identical block
/// boundaries, so pruned-scan distances never depend on the CPU.
pub const SCAN_BLOCK_WORDS64: usize = 8;

/// Counter planes of the in-register carry-save majority: votes up to
/// `2^10 - 1` inputs.
pub const RIPPLE_PLANES: usize = 10;

/// Cached process-wide kernel level: 0 = undecided, 1 = portable,
/// 2 = AVX2.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

/// A kernel dispatch level. See the [module docs](self) for the
/// dispatch and override rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Simd {
    /// 4×`u64` unrolled safe Rust — compiles anywhere, auto-vectorizes,
    /// and serves as the scalar reference for every other level.
    Portable,
    /// 256-bit AVX2 lanes with POPCNT/`vpshufb` population counts.
    ///
    /// Methods on this variant panic if the running CPU lacks AVX2 or
    /// POPCNT (the check is a cached atomic load), so the variant is
    /// safe to name unconditionally.
    #[cfg(target_arch = "x86_64")]
    Avx2,
}

impl Simd {
    /// The level the current process/CPU should use: the probed CPU
    /// features, unless `PULP_HD_FORCE_SCALAR` is set to anything but
    /// `0`/empty, which forces [`Simd::Portable`].
    #[must_use]
    pub fn detect() -> Self {
        if std::env::var_os("PULP_HD_FORCE_SCALAR").is_some_and(|v| !v.is_empty() && v != "0") {
            return Self::Portable;
        }
        #[cfg(target_arch = "x86_64")]
        if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("popcnt") {
            return Self::Avx2;
        }
        Self::Portable
    }

    /// The process-wide active level, detecting (and caching) it on
    /// first use.
    #[must_use]
    pub fn active() -> Self {
        match ACTIVE.load(Ordering::Relaxed) {
            1 => Self::Portable,
            #[cfg(target_arch = "x86_64")]
            2 => Self::Avx2,
            _ => {
                let detected = Self::detect();
                // ORDERING: Relaxed — a monotone cache of an idempotent
                // detection; racing initializers store the same value,
                // and no other memory hangs off it.
                ACTIVE.store(detected.code(), Ordering::Relaxed);
                detected
            }
        }
    }

    /// Overrides the process-wide level returned by [`Simd::active`].
    ///
    /// Intended for tests and experiments. Because every level computes
    /// bit-identical results, flipping the level at any point — even
    /// while other threads are mid-computation — only changes speed,
    /// never output.
    pub fn set_active(level: Self) {
        // ORDERING: Relaxed — every level is bit-identical, so a stale
        // read elsewhere only changes speed, never output (see above).
        ACTIVE.store(level.code(), Ordering::Relaxed);
    }

    /// Stable lowercase name, as recorded in `BENCH_throughput.json`.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Portable => "portable",
            #[cfg(target_arch = "x86_64")]
            Self::Avx2 => "avx2",
        }
    }

    fn code(self) -> u8 {
        match self {
            Self::Portable => 1,
            #[cfg(target_arch = "x86_64")]
            Self::Avx2 => 2,
        }
    }

    /// `dst ^= src` wordwise — the HD binding kernel.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    #[inline]
    pub fn xor_into(self, dst: &mut [u64], src: &[u64]) {
        assert_eq!(dst.len(), src.len(), "kernel operand length mismatch");
        match self {
            Self::Portable => portable::xor_into(dst, src),
            #[cfg(target_arch = "x86_64")]
            Self::Avx2 => {
                avx2_ready();
                // SAFETY: `avx2_ready()` above verified (or aborted on a
                // broken override) that this CPU has the AVX2 features
                // the `#[target_feature]` kernel was compiled for.
                unsafe { avx2::xor_into(dst, src) }
            }
        }
    }

    /// Population count of a word slice.
    #[must_use]
    #[inline]
    pub fn popcount(self, a: &[u64]) -> u32 {
        match self {
            Self::Portable => portable::popcount(a),
            #[cfg(target_arch = "x86_64")]
            Self::Avx2 => {
                avx2_ready();
                // SAFETY: `avx2_ready()` above verified (or aborted on a
                // broken override) that this CPU has the AVX2 features
                // the `#[target_feature]` kernel was compiled for.
                unsafe { avx2::popcount(a) }
            }
        }
    }

    /// Hamming distance (`popcount(a ^ b)`) — the AM-scan kernel.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    #[must_use]
    #[inline]
    pub fn hamming(self, a: &[u64], b: &[u64]) -> u32 {
        assert_eq!(a.len(), b.len(), "kernel operand length mismatch");
        match self {
            Self::Portable => portable::hamming(a, b),
            #[cfg(target_arch = "x86_64")]
            Self::Avx2 => {
                avx2_ready();
                // SAFETY: `avx2_ready()` above verified (or aborted on a
                // broken override) that this CPU has the AVX2 features
                // the `#[target_feature]` kernel was compiled for.
                unsafe { avx2::hamming(a, b) }
            }
        }
    }

    /// Early-exit Hamming distance: accumulates in
    /// [`SCAN_BLOCK_WORDS64`]-word blocks and returns the partial sum
    /// as soon as it exceeds `bound` at a block boundary (otherwise the
    /// exact distance). Every level abandons at identical block
    /// boundaries, so the returned partial is level-independent.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    #[must_use]
    #[inline]
    pub fn hamming_bounded(self, a: &[u64], b: &[u64], bound: u32) -> u32 {
        assert_eq!(a.len(), b.len(), "kernel operand length mismatch");
        match self {
            Self::Portable => portable::hamming_bounded(a, b, bound),
            #[cfg(target_arch = "x86_64")]
            Self::Avx2 => {
                avx2_ready();
                // SAFETY: `avx2_ready()` above verified (or aborted on a
                // broken override) that this CPU has the AVX2 features
                // the `#[target_feature]` kernel was compiled for.
                unsafe { avx2::hamming_bounded(a, b, bound) }
            }
        }
    }

    /// Two-sided early-exit Hamming distance for the approximate
    /// threshold AM scan. Accumulates in [`SCAN_BLOCK_WORDS64`]-word
    /// blocks and stops at the first block boundary where either
    ///
    /// * the partial sum exceeds `prune` (this prototype can no longer
    ///   win — same abandonment rule as [`Simd::hamming_bounded`]), or
    /// * the partial sum plus the maximum possible contribution of the
    ///   unscanned words (64 per word) is `<= accept` — the exact
    ///   distance is then guaranteed to be at most `accept`, so the
    ///   caller may accept this prototype without finishing the scan.
    ///
    /// Either way the returned value is the partial sum at the stopping
    /// block boundary — a lower bound on the exact distance — and the
    /// exact distance if neither side fired. Both levels evaluate the
    /// two checks in the same order at identical block boundaries, so
    /// the result is level-independent.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    #[must_use]
    #[inline]
    pub fn hamming_threshold(self, a: &[u64], b: &[u64], prune: u32, accept: u32) -> u32 {
        assert_eq!(a.len(), b.len(), "kernel operand length mismatch");
        match self {
            Self::Portable => portable::hamming_threshold(a, b, prune, accept),
            #[cfg(target_arch = "x86_64")]
            Self::Avx2 => {
                avx2_ready();
                // SAFETY: `avx2_ready()` above verified (or aborted on a
                // broken override) that this CPU has the AVX2 features
                // the `#[target_feature]` kernel was compiled for.
                unsafe { avx2::hamming_threshold(a, b, prune, accept) }
            }
        }
    }

    /// `out = a | b` wordwise — the 2-input paper majority
    /// (`maj{x, y, x⊕y}` collapses to OR).
    ///
    /// # Panics
    ///
    /// Panics if any slice length differs from `out`'s.
    #[inline]
    pub fn or_into(self, a: &[u64], b: &[u64], out: &mut [u64]) {
        assert!(
            a.len() == out.len() && b.len() == out.len(),
            "kernel operand length mismatch"
        );
        match self {
            Self::Portable => portable::or_into(a, b, out),
            #[cfg(target_arch = "x86_64")]
            Self::Avx2 => {
                avx2_ready();
                // SAFETY: `avx2_ready()` above verified (or aborted on a
                // broken override) that this CPU has the AVX2 features
                // the `#[target_feature]` kernel was compiled for.
                unsafe { avx2::or_into(a, b, out) }
            }
        }
    }

    /// 3-input componentwise majority (one full adder per word).
    ///
    /// # Panics
    ///
    /// Panics if any slice length differs from `out`'s.
    #[inline]
    pub fn maj3_into(self, x0: &[u64], x1: &[u64], x2: &[u64], out: &mut [u64]) {
        assert!(
            x0.len() == out.len() && x1.len() == out.len() && x2.len() == out.len(),
            "kernel operand length mismatch"
        );
        match self {
            Self::Portable => portable::maj3_into(x0, x1, x2, out),
            #[cfg(target_arch = "x86_64")]
            Self::Avx2 => {
                avx2_ready();
                // SAFETY: `avx2_ready()` above verified (or aborted on a
                // broken override) that this CPU has the AVX2 features
                // the `#[target_feature]` kernel was compiled for.
                unsafe { avx2::maj3_into(x0, x1, x2, out) }
            }
        }
    }

    /// 5-input componentwise majority (two full adders + combine).
    ///
    /// # Panics
    ///
    /// Panics if any slice length differs from `out`'s.
    #[inline]
    pub fn maj5_into(
        self,
        x0: &[u64],
        x1: &[u64],
        x2: &[u64],
        x3: &[u64],
        x4: &[u64],
        out: &mut [u64],
    ) {
        assert!(
            x0.len() == out.len()
                && x1.len() == out.len()
                && x2.len() == out.len()
                && x3.len() == out.len()
                && x4.len() == out.len(),
            "kernel operand length mismatch"
        );
        match self {
            Self::Portable => portable::maj5_into(x0, x1, x2, x3, x4, out),
            #[cfg(target_arch = "x86_64")]
            Self::Avx2 => {
                avx2_ready();
                // SAFETY: `avx2_ready()` above verified (or aborted on a
                // broken override) that this CPU has the AVX2 features
                // the `#[target_feature]` kernel was compiled for.
                unsafe { avx2::maj5_into(x0, x1, x2, x3, x4, out) }
            }
        }
    }

    /// 5-input majority whose fifth input is the paper's tie-break
    /// vector `x0 ⊕ x1`, computed in-register (the 4-input even vote).
    ///
    /// # Panics
    ///
    /// Panics if any slice length differs from `out`'s.
    #[inline]
    pub fn maj5_tie_into(self, x0: &[u64], x1: &[u64], x2: &[u64], x3: &[u64], out: &mut [u64]) {
        assert!(
            x0.len() == out.len()
                && x1.len() == out.len()
                && x2.len() == out.len()
                && x3.len() == out.len(),
            "kernel operand length mismatch"
        );
        match self {
            Self::Portable => portable::maj5_tie_into(x0, x1, x2, x3, out),
            #[cfg(target_arch = "x86_64")]
            Self::Avx2 => {
                avx2_ready();
                // SAFETY: `avx2_ready()` above verified (or aborted on a
                // broken override) that this CPU has the AVX2 features
                // the `#[target_feature]` kernel was compiled for.
                unsafe { avx2::maj5_tie_into(x0, x1, x2, x3, out) }
            }
        }
    }

    /// Generic carry-save majority over `n` word slices accessed by
    /// index, with the vote counters ("bundling planes") held in
    /// registers: `out[w]` gets bit `c` set iff at least `threshold` of
    /// the inputs (plus, when `even_tie`, the tie vector
    /// `get(0) ⊕ get(1)`) have bit `c` of word `w` set.
    ///
    /// The effective vote count `n + even_tie` must stay below
    /// `2^`[`RIPPLE_PLANES`]; wider votes belong to the streaming
    /// accumulator ([`crate::hv64::BitslicedBundler`]).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `threshold == 0`, the vote count overflows
    /// the counter, or any input length differs from `out`'s.
    pub fn ripple_majority_into<'a, F>(
        self,
        n: usize,
        get: F,
        even_tie: bool,
        threshold: u32,
        out: &mut [u64],
    ) where
        F: Fn(usize) -> &'a [u64],
    {
        assert!(n > 0, "majority of an empty set is undefined");
        assert!(threshold > 0, "majority threshold must be at least 1");
        assert!(
            n + usize::from(even_tie) < (1 << RIPPLE_PLANES),
            "vote of {n} inputs overflows the {RIPPLE_PLANES}-plane counter"
        );
        for i in 0..n {
            assert_eq!(get(i).len(), out.len(), "kernel operand length mismatch");
        }
        match self {
            Self::Portable => portable::ripple_majority_from(n, &get, even_tie, threshold, out, 0),
            #[cfg(target_arch = "x86_64")]
            Self::Avx2 => {
                avx2_ready();
                // SAFETY: `avx2_ready()` above verified (or aborted on a
                // broken override) that this CPU has the AVX2 features
                // the `#[target_feature]` kernel was compiled for.
                unsafe { avx2::ripple_majority_into(n, &get, even_tie, threshold, out) }
            }
        }
    }

    /// One carry-save addition step of the counter-plane accumulators:
    /// `(plane, carry) ← (plane ⊕ carry, plane ∧ carry)`, evaluated for
    /// 64 counters per word. Returns whether any carry survives —
    /// i.e. whether the ripple must continue into the next plane.
    ///
    /// Chaining this step over the planes of a bit-sliced counter stack
    /// adds one packed hypervector to 64 per-component counters per
    /// word-operation ("sideways addition") — the training-accumulation
    /// kernel behind [`crate::hv64::CounterBundler`].
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    #[inline]
    pub fn csa_step(self, plane: &mut [u64], carry: &mut [u64]) -> bool {
        assert_eq!(plane.len(), carry.len(), "kernel operand length mismatch");
        match self {
            Self::Portable => portable::csa_step(plane, carry),
            #[cfg(target_arch = "x86_64")]
            Self::Avx2 => {
                avx2_ready();
                // SAFETY: `avx2_ready()` above verified (or aborted on a
                // broken override) that this CPU has the AVX2 features
                // the `#[target_feature]` kernel was compiled for.
                unsafe { avx2::csa_step(plane, carry) }
            }
        }
    }

    /// Thresholds bit-sliced per-component counters into a majority
    /// vector with a **seeded tie policy**: component `c` of word `w`
    /// becomes one iff its count strictly exceeds `n / 2`, or exactly
    /// equals `n / 2` (possible only for even `n`) and the corresponding
    /// `tie` bit is one. This is the vectorized twin of the scalar
    /// training threshold [`crate::bundle::Bundler::majority`] with
    /// `TieBreak::Seeded` — the finalize step of one-shot training and
    /// online updates.
    ///
    /// `planes(p)` yields counter plane `p` (bit `p` of each count) for
    /// `p < n_planes`; higher planes read as zero. Padding lanes whose
    /// count is zero stay clear as long as `n > 0` (the threshold is at
    /// least 1 and zero never equals `n / 2` for `n >= 2`; for `n == 1`
    /// the count *is* the input, which has clean padding).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or any plane / `tie` length differs from
    /// `out`'s.
    pub fn counter_majority_into<'a, F>(
        self,
        planes: F,
        n_planes: usize,
        n: u32,
        tie: &[u64],
        out: &mut [u64],
    ) where
        F: Fn(usize) -> &'a [u64],
    {
        assert!(n > 0, "majority of an empty bundle is undefined");
        assert_eq!(tie.len(), out.len(), "kernel operand length mismatch");
        for p in 0..n_planes {
            assert_eq!(planes(p).len(), out.len(), "kernel operand length mismatch");
        }
        match self {
            Self::Portable => {
                portable::counter_majority_from(&planes, n_planes, n, tie, out, 0);
            }
            #[cfg(target_arch = "x86_64")]
            Self::Avx2 => {
                avx2_ready();
                // SAFETY: `avx2_ready()` above verified (or aborted on a
                // broken override) that this CPU has the AVX2 features
                // the `#[target_feature]` kernel was compiled for.
                unsafe { avx2::counter_majority_into(&planes, n_planes, n, tie, out) }
            }
        }
    }

    /// `dst = rotate(src, k)` over a `dim`-bit vector packed
    /// little-endian into `u64` words: all components move left by
    /// `k mod dim` positions. Padding bits of `src` must be zero;
    /// `dst`'s padding bits are left zero.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or either slice length differs from
    /// `dim.div_ceil(64)`.
    pub fn rotate_into_words(self, dst: &mut [u64], src: &[u64], dim: usize, k: usize) {
        let (geom, k) = Self::rot_args(dst, src, dim, k);
        if k == 0 {
            dst.copy_from_slice(src);
            return;
        }
        let geom = geom.expect("geometry exists for nonzero rotation");
        match self {
            Self::Portable => portable::rotate_into(dst, src, &geom),
            #[cfg(target_arch = "x86_64")]
            Self::Avx2 => {
                avx2_ready();
                dst.fill(0);
                // SAFETY: `avx2_ready()` above verified (or aborted on a
                // broken override) that this CPU has the AVX2 features
                // the `#[target_feature]` kernel was compiled for.
                unsafe { avx2::xor_rotated_into(dst, src, &geom) }
            }
        }
    }

    /// Fused bind-rotate: `dst ^= rotate(src, k)` over a `dim`-bit
    /// vector, with no rotated temporary. Padding-bit contract as for
    /// [`rotate_into_words`](Self::rotate_into_words).
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or either slice length differs from
    /// `dim.div_ceil(64)`.
    pub fn xor_rotated_words(self, dst: &mut [u64], src: &[u64], dim: usize, k: usize) {
        let (geom, k) = Self::rot_args(dst, src, dim, k);
        if k == 0 {
            self.xor_into(dst, src);
            return;
        }
        let geom = geom.expect("geometry exists for nonzero rotation");
        match self {
            Self::Portable => portable::xor_rotated_into(dst, src, &geom),
            #[cfg(target_arch = "x86_64")]
            Self::Avx2 => {
                avx2_ready();
                // SAFETY: `avx2_ready()` above verified (or aborted on a
                // broken override) that this CPU has the AVX2 features
                // the `#[target_feature]` kernel was compiled for.
                unsafe { avx2::xor_rotated_into(dst, src, &geom) }
            }
        }
    }

    /// Shared validation for the rotation kernels; returns the geometry
    /// (when the normalized shift is nonzero) and the normalized shift.
    fn rot_args(dst: &[u64], src: &[u64], dim: usize, k: usize) -> (Option<RotGeom>, usize) {
        assert!(dim > 0, "rotation needs a nonzero dimension");
        let words = dim.div_ceil(64);
        assert!(
            dst.len() == words && src.len() == words,
            "rotation buffers must hold exactly {words} words for {dim} bits"
        );
        let k = k % dim;
        (
            if k == 0 {
                None
            } else {
                Some(RotGeom::new(dim, k))
            },
            k,
        )
    }
}

/// Panics unless the running CPU supports the AVX2/POPCNT kernels —
/// the soundness guard that lets [`Simd::Avx2`] expose safe methods.
#[cfg(target_arch = "x86_64")]
#[inline]
fn avx2_ready() {
    assert!(
        is_x86_feature_detected!("avx2") && is_x86_feature_detected!("popcnt"),
        "Simd::Avx2 kernels invoked on a CPU without AVX2/POPCNT"
    );
}

/// Per-word geometry of a `dim`-bit left rotation by `k` over
/// little-endian `u64` words: `rotl(x, k) = ((x << k) | (x >> (dim -
/// k))) mod 2^dim`, evaluated one output word at a time so rotations
/// stream into existing buffers without big-integer temporaries.
///
/// Every output word is the OR of two contributions with **disjoint bit
/// positions** (each output bit comes from exactly one input bit), so
/// the kernels may also XOR or ADD them — the AVX2 path exploits this
/// to apply the two contributions in independent passes.
pub(crate) struct RotGeom {
    /// Word/bit split of the left-shift part (`<< k`).
    shl_words: usize,
    shl_bits: usize,
    /// Word/bit split of the wrap part (`>> (dim - k)`).
    shr_words: usize,
    shr_bits: usize,
    /// Valid bits in the top word (0 when the dimension fills it).
    tail: usize,
}

impl RotGeom {
    pub(crate) fn new(dim: usize, k: usize) -> Self {
        debug_assert!(k > 0 && k < dim);
        let wrap = dim - k;
        Self {
            shl_words: k / 64,
            shl_bits: k % 64,
            shr_words: wrap / 64,
            shr_bits: wrap % 64,
            tail: dim % 64,
        }
    }

    /// The `<< k` contribution to output word `j` (zero for `j` below
    /// the word shift).
    #[inline]
    fn shl_part(&self, x: &[u64], j: usize) -> u64 {
        if j < self.shl_words {
            return 0;
        }
        let lo = x[j - self.shl_words] << self.shl_bits;
        let carry = if j > self.shl_words && self.shl_bits > 0 {
            x[j - self.shl_words - 1] >> (64 - self.shl_bits)
        } else {
            0
        };
        lo | carry
    }

    /// The `>> (dim - k)` wrap contribution to output word `j` (zero
    /// once the source index runs off the top).
    #[inline]
    fn shr_part(&self, x: &[u64], j: usize) -> u64 {
        if j + self.shr_words >= x.len() {
            return 0;
        }
        let hi = x[j + self.shr_words] >> self.shr_bits;
        let carry = if j + self.shr_words + 1 < x.len() && self.shr_bits > 0 {
            x[j + self.shr_words + 1] << (64 - self.shr_bits)
        } else {
            0
        };
        hi | carry
    }

    /// Output word `j` of the rotated vector (unmasked; the caller
    /// masks the tail of the top word).
    #[inline]
    pub(crate) fn word(&self, x: &[u64], j: usize) -> u64 {
        self.shl_part(x, j) | self.shr_part(x, j)
    }

    /// All-ones below the tail boundary (all-ones when the dimension
    /// fills the top word).
    #[inline]
    pub(crate) fn tail_mask(&self) -> u64 {
        if self.tail == 0 {
            u64::MAX
        } else {
            (1u64 << self.tail) - 1
        }
    }
}

/// Bit-sliced full adder over 64 lanes: `(sum, carry)` of three one-bit
/// addends per lane — the cell the majority networks are built from.
#[inline]
pub(crate) fn full_add(a: u64, b: u64, c: u64) -> (u64, u64) {
    let ab = a ^ b;
    (ab ^ c, (a & b) | (c & ab))
}

/// The portable level: safe Rust, unrolled four `u64` words per step so
/// the auto-vectorizer can widen it, and simple enough to audit — this
/// is the reference implementation of every kernel.
mod portable {
    use super::{full_add, RotGeom, RIPPLE_PLANES, SCAN_BLOCK_WORDS64};

    /// Applies `f` to 4-word blocks of three equal-length slices
    /// (two inputs, one output), then to the remainder wordwise.
    #[inline]
    fn zip2_into(a: &[u64], b: &[u64], out: &mut [u64], f: impl Fn(u64, u64) -> u64) {
        let mut oc = out.chunks_exact_mut(4);
        let mut ac = a.chunks_exact(4);
        let mut bc = b.chunks_exact(4);
        for ((o, x), y) in (&mut oc).zip(&mut ac).zip(&mut bc) {
            o[0] = f(x[0], y[0]);
            o[1] = f(x[1], y[1]);
            o[2] = f(x[2], y[2]);
            o[3] = f(x[3], y[3]);
        }
        for ((o, &x), &y) in oc
            .into_remainder()
            .iter_mut()
            .zip(ac.remainder())
            .zip(bc.remainder())
        {
            *o = f(x, y);
        }
    }

    pub(super) fn xor_into(dst: &mut [u64], src: &[u64]) {
        let mut dc = dst.chunks_exact_mut(4);
        let mut sc = src.chunks_exact(4);
        for (d, s) in (&mut dc).zip(&mut sc) {
            d[0] ^= s[0];
            d[1] ^= s[1];
            d[2] ^= s[2];
            d[3] ^= s[3];
        }
        for (d, &s) in dc.into_remainder().iter_mut().zip(sc.remainder()) {
            *d ^= s;
        }
    }

    pub(super) fn popcount(a: &[u64]) -> u32 {
        let mut c = a.chunks_exact(4);
        let mut total = 0u32;
        for w in &mut c {
            total += w[0].count_ones() + w[1].count_ones() + w[2].count_ones() + w[3].count_ones();
        }
        for &w in c.remainder() {
            total += w.count_ones();
        }
        total
    }

    pub(super) fn hamming(a: &[u64], b: &[u64]) -> u32 {
        let mut ac = a.chunks_exact(4);
        let mut bc = b.chunks_exact(4);
        let mut total = 0u32;
        for (x, y) in (&mut ac).zip(&mut bc) {
            total += (x[0] ^ y[0]).count_ones()
                + (x[1] ^ y[1]).count_ones()
                + (x[2] ^ y[2]).count_ones()
                + (x[3] ^ y[3]).count_ones();
        }
        for (&x, &y) in ac.remainder().iter().zip(bc.remainder()) {
            total += (x ^ y).count_ones();
        }
        total
    }

    pub(super) fn hamming_bounded(a: &[u64], b: &[u64], bound: u32) -> u32 {
        let mut d = 0u32;
        for (ba, bb) in a
            .chunks(SCAN_BLOCK_WORDS64)
            .zip(b.chunks(SCAN_BLOCK_WORDS64))
        {
            d += hamming(ba, bb);
            if d > bound {
                break;
            }
        }
        d
    }

    pub(super) fn hamming_threshold(a: &[u64], b: &[u64], prune: u32, accept: u32) -> u32 {
        let n = a.len();
        let mut d = 0u32;
        let mut i = 0;
        while i < n {
            let end = (i + SCAN_BLOCK_WORDS64).min(n);
            d += hamming(&a[i..end], &b[i..end]);
            i = end;
            // Check order is part of the kernel contract: abandon
            // first, then early-accept (the AVX2 lane mirrors it).
            if d > prune {
                break;
            }
            if u64::from(d) + ((n - i) as u64) * 64 <= u64::from(accept) {
                break;
            }
        }
        d
    }

    pub(super) fn or_into(a: &[u64], b: &[u64], out: &mut [u64]) {
        zip2_into(a, b, out, |x, y| x | y);
    }

    pub(super) fn maj3_into(x0: &[u64], x1: &[u64], x2: &[u64], out: &mut [u64]) {
        for (((o, &a), &b), &c) in out.iter_mut().zip(x0).zip(x1).zip(x2) {
            let (_, maj) = full_add(a, b, c);
            *o = maj;
        }
    }

    #[inline]
    fn maj5_word(a: u64, b: u64, c: u64, d: u64, e: u64) -> u64 {
        let (s1, c1) = full_add(a, b, c);
        let (s2, c2) = full_add(s1, d, e);
        (c1 & c2) | ((c1 | c2) & s2)
    }

    pub(super) fn maj5_into(
        x0: &[u64],
        x1: &[u64],
        x2: &[u64],
        x3: &[u64],
        x4: &[u64],
        out: &mut [u64],
    ) {
        for (j, o) in out.iter_mut().enumerate() {
            *o = maj5_word(x0[j], x1[j], x2[j], x3[j], x4[j]);
        }
    }

    pub(super) fn maj5_tie_into(x0: &[u64], x1: &[u64], x2: &[u64], x3: &[u64], out: &mut [u64]) {
        for (j, o) in out.iter_mut().enumerate() {
            *o = maj5_word(x0[j], x1[j], x2[j], x3[j], x0[j] ^ x1[j]);
        }
    }

    /// The in-register ripple counter from word `start` to the end —
    /// also the tail loop of the AVX2 version, which is why the range
    /// is a parameter.
    pub(super) fn ripple_majority_from<'a, F>(
        n: usize,
        get: &F,
        even_tie: bool,
        threshold: u32,
        out: &mut [u64],
        start: usize,
    ) where
        F: Fn(usize) -> &'a [u64],
    {
        let t_bits = (32 - threshold.leading_zeros()) as usize;
        for (wi, o) in out.iter_mut().enumerate().skip(start) {
            let mut planes = [0u64; RIPPLE_PLANES];
            let mut used = 0usize;
            let ripple = |planes: &mut [u64; RIPPLE_PLANES], used: &mut usize, w: u64| {
                let mut carry = w;
                let mut p = 0;
                while carry != 0 {
                    let t = planes[p] & carry;
                    planes[p] ^= carry;
                    carry = t;
                    p += 1;
                }
                *used = (*used).max(p);
            };
            for i in 0..n {
                ripple(&mut planes, &mut used, get(i)[wi]);
            }
            if even_tie {
                ripple(&mut planes, &mut used, get(0)[wi] ^ get(1)[wi]);
            }
            // count >= threshold ⇔ (count - threshold) does not borrow.
            let mut borrow = 0u64;
            for (p, &plane) in planes.iter().enumerate().take(used.max(t_bits)) {
                let t = if threshold >> p & 1 == 1 { u64::MAX } else { 0 };
                borrow = (!plane & (t | borrow)) | (t & borrow);
            }
            *o = !borrow;
        }
    }

    pub(super) fn csa_step(plane: &mut [u64], carry: &mut [u64]) -> bool {
        let mut any = 0u64;
        let mut pc = plane.chunks_exact_mut(4);
        let mut cc = carry.chunks_exact_mut(4);
        for (p, c) in (&mut pc).zip(&mut cc) {
            for i in 0..4 {
                let t = p[i] & c[i];
                p[i] ^= c[i];
                c[i] = t;
                any |= t;
            }
        }
        for (p, c) in pc
            .into_remainder()
            .iter_mut()
            .zip(cc.into_remainder().iter_mut())
        {
            let t = *p & *c;
            *p ^= *c;
            *c = t;
            any |= t;
        }
        any != 0
    }

    /// The seeded-tie counter threshold from word `start` to the end —
    /// also the tail loop of the AVX2 version.
    pub(super) fn counter_majority_from<'a, F>(
        planes: &F,
        n_planes: usize,
        n: u32,
        tie: &[u64],
        out: &mut [u64],
        start: usize,
    ) where
        F: Fn(usize) -> &'a [u64],
    {
        let threshold = n / 2 + 1;
        let even = n % 2 == 0;
        let half = n / 2;
        let t_bits = (32 - threshold.leading_zeros()) as usize;
        let p_max = n_planes.max(t_bits);
        for (wi, o) in out.iter_mut().enumerate().skip(start) {
            // count >= threshold ⇔ (count - threshold) does not borrow;
            // count == half ⇔ every counter bit matches half's bits.
            let mut borrow = 0u64;
            let mut eq = u64::MAX;
            for p in 0..p_max {
                let plane = if p < n_planes { planes(p)[wi] } else { 0 };
                let t = if threshold >> p & 1 == 1 { u64::MAX } else { 0 };
                borrow = (!plane & (t | borrow)) | (t & borrow);
                let h = if half >> p & 1 == 1 { u64::MAX } else { 0 };
                eq &= !(plane ^ h);
            }
            let gt = !borrow;
            *o = if even { gt | (eq & tie[wi]) } else { gt };
        }
    }

    pub(super) fn rotate_into(dst: &mut [u64], src: &[u64], g: &RotGeom) {
        for (j, d) in dst.iter_mut().enumerate() {
            *d = g.word(src, j);
        }
        if let Some(top) = dst.last_mut() {
            *top &= g.tail_mask();
        }
    }

    pub(super) fn xor_rotated_into(dst: &mut [u64], src: &[u64], g: &RotGeom) {
        let last = dst.len() - 1;
        for (j, d) in dst.iter_mut().enumerate() {
            let mut r = g.word(src, j);
            if j == last {
                r &= g.tail_mask();
            }
            *d ^= r;
        }
    }
}

/// The AVX2/POPCNT level. Every function is `unsafe fn` +
/// `#[target_feature]`; the safe dispatch methods on [`Simd`] guard
/// each call with a CPU-feature check. All loops fall back to the
/// portable scalar code for remainders and boundary words, so the two
/// levels share their edge-case handling where it matters most.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    #![deny(unsafe_op_in_unsafe_fn)]
    // On the workspace MSRV (1.82) every intrinsic call below needs an
    // explicit `unsafe` block; newer toolchains (1.86+) treat the
    // value-only intrinsics as safe inside `#[target_feature]` fns and
    // would flag those same blocks as unused. Keep the blocks (the MSRV
    // needs them) and silence the newer compilers' redundancy lint.
    #![allow(unused_unsafe)]

    use core::arch::x86_64::{
        __m256i, _mm256_add_epi64, _mm256_add_epi8, _mm256_and_si256, _mm256_andnot_si256,
        _mm256_loadu_si256, _mm256_or_si256, _mm256_sad_epu8, _mm256_set1_epi8, _mm256_setr_epi8,
        _mm256_setzero_si256, _mm256_shuffle_epi8, _mm256_sll_epi64, _mm256_srl_epi64,
        _mm256_srli_epi32, _mm256_storeu_si256, _mm256_testz_si256, _mm256_xor_si256,
        _mm_cvtsi32_si128,
    };

    use super::{RotGeom, RIPPLE_PLANES, SCAN_BLOCK_WORDS64};

    /// Unaligned 4-word load at `a[i..i + 4]`.
    ///
    /// # Safety
    ///
    /// Requires `i + 4 <= a.len()` and AVX2.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn loadu(a: &[u64], i: usize) -> __m256i {
        debug_assert!(i + 4 <= a.len());
        // SAFETY: the fn's contract requires `i + 4 <= a.len()`
        // (debug-asserted above) and AVX2.
        unsafe { _mm256_loadu_si256(a.as_ptr().add(i).cast()) }
    }

    /// Unaligned 4-word store to `a[i..i + 4]`.
    ///
    /// # Safety
    ///
    /// Requires `i + 4 <= a.len()` and AVX2.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn storeu(a: &mut [u64], i: usize, v: __m256i) {
        debug_assert!(i + 4 <= a.len());
        // SAFETY: the fn's contract requires `i + 4 <= a.len()`
        // (debug-asserted above) and AVX2.
        unsafe { _mm256_storeu_si256(a.as_mut_ptr().add(i).cast(), v) }
    }

    /// # Safety
    ///
    /// Requires AVX2 and `dst.len() == src.len()`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn xor_into(dst: &mut [u64], src: &[u64]) {
        let n = dst.len();
        let mut i = 0;
        while i + 4 <= n {
            // SAFETY: the loop bound keeps every 4-word lane in range;
            // AVX2 flows from the enclosing `#[target_feature]` contract.
            let v = unsafe { _mm256_xor_si256(loadu(dst, i), loadu(src, i)) };
            // SAFETY: same bound as the load above.
            unsafe { storeu(dst, i, v) };
            i += 4;
        }
        while i < n {
            dst[i] ^= src[i];
            i += 1;
        }
    }

    /// Per-byte population count of 4 words via the `vpshufb` nibble
    /// table, accumulated into 4 `u64` lanes with `vpsadbw`.
    ///
    /// # Safety
    ///
    /// Requires AVX2.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn popcnt_epi64(v: __m256i) -> __m256i {
        // SAFETY: register-only intrinsics; AVX2 flows from the
        // enclosing `#[target_feature]` contract.
        unsafe {
            let lut = _mm256_setr_epi8(
                0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3,
                2, 3, 3, 4,
            );
            let low = _mm256_set1_epi8(0x0f);
            let lo = _mm256_and_si256(v, low);
            let hi = _mm256_and_si256(_mm256_srli_epi32(v, 4), low);
            let cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
            _mm256_sad_epu8(cnt, _mm256_setzero_si256())
        }
    }

    /// # Safety
    ///
    /// Requires AVX2.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn hsum_epi64(v: __m256i) -> u64 {
        let mut lanes = [0u64; 4];
        // SAFETY: `lanes` is exactly 32 bytes; AVX2 flows from the
        // enclosing `#[target_feature]` contract.
        unsafe { _mm256_storeu_si256(lanes.as_mut_ptr().cast(), v) };
        lanes[0]
            .wrapping_add(lanes[1])
            .wrapping_add(lanes[2])
            .wrapping_add(lanes[3])
    }

    /// # Safety
    ///
    /// Requires AVX2 and POPCNT.
    #[target_feature(enable = "avx2,popcnt")]
    #[allow(clippy::cast_possible_truncation)]
    pub(super) unsafe fn popcount(a: &[u64]) -> u32 {
        let n = a.len();
        // SAFETY: register-only intrinsics; AVX2 flows from the
        // enclosing `#[target_feature]` contract.
        let mut acc = unsafe { _mm256_setzero_si256() };
        let mut i = 0;
        while i + 4 <= n {
            // SAFETY: the loop bound keeps every 4-word lane in range;
            // AVX2 flows from the enclosing `#[target_feature]` contract.
            acc = unsafe { _mm256_add_epi64(acc, popcnt_epi64(loadu(a, i))) };
            i += 4;
        }
        // SAFETY: register-only intrinsics; AVX2 flows from the
        // enclosing `#[target_feature]` contract.
        let mut total = unsafe { hsum_epi64(acc) };
        while i < n {
            total += u64::from(a[i].count_ones());
            i += 1;
        }
        total as u32
    }

    /// # Safety
    ///
    /// Requires AVX2, POPCNT, and `a.len() == b.len()`.
    #[target_feature(enable = "avx2,popcnt")]
    #[allow(clippy::cast_possible_truncation)]
    pub(super) unsafe fn hamming(a: &[u64], b: &[u64]) -> u32 {
        let n = a.len();
        // SAFETY: register-only intrinsics; AVX2 flows from the
        // enclosing `#[target_feature]` contract.
        let mut acc = unsafe { _mm256_setzero_si256() };
        let mut i = 0;
        while i + 8 <= n {
            // SAFETY: the loop bound keeps every 4-word lane in range;
            // AVX2 flows from the enclosing `#[target_feature]` contract.
            let x0 = unsafe { _mm256_xor_si256(loadu(a, i), loadu(b, i)) };
            // SAFETY: `i + 8 <= n` covers the second lane too.
            let x1 = unsafe { _mm256_xor_si256(loadu(a, i + 4), loadu(b, i + 4)) };
            // SAFETY: register-only intrinsics; AVX2 flows from the
            // enclosing `#[target_feature]` contract.
            let c = unsafe { _mm256_add_epi64(popcnt_epi64(x0), popcnt_epi64(x1)) };
            // SAFETY: register-only intrinsics; AVX2 flows from the
            // enclosing `#[target_feature]` contract.
            acc = unsafe { _mm256_add_epi64(acc, c) };
            i += 8;
        }
        if i + 4 <= n {
            // SAFETY: the loop bound keeps every 4-word lane in range;
            // AVX2 flows from the enclosing `#[target_feature]` contract.
            let x = unsafe { _mm256_xor_si256(loadu(a, i), loadu(b, i)) };
            // SAFETY: register-only intrinsics; AVX2 flows from the
            // enclosing `#[target_feature]` contract.
            acc = unsafe { _mm256_add_epi64(acc, popcnt_epi64(x)) };
            i += 4;
        }
        // SAFETY: register-only intrinsics; AVX2 flows from the
        // enclosing `#[target_feature]` contract.
        let mut total = unsafe { hsum_epi64(acc) };
        while i < n {
            total += u64::from((a[i] ^ b[i]).count_ones());
            i += 1;
        }
        total as u32
    }

    /// Early-exit Hamming distance at the shared
    /// [`SCAN_BLOCK_WORDS64`]-word block granularity. Uses scalar
    /// `popcnt` (one per word): with the hardware instruction the block
    /// sum is load-bound anyway, and the block partials must equal the
    /// portable level's exactly.
    ///
    /// # Safety
    ///
    /// Requires POPCNT and `a.len() == b.len()`.
    #[target_feature(enable = "popcnt")]
    pub(super) unsafe fn hamming_bounded(a: &[u64], b: &[u64], bound: u32) -> u32 {
        let n = a.len();
        let mut d = 0u32;
        let mut i = 0;
        while i < n {
            let end = (i + SCAN_BLOCK_WORDS64).min(n);
            let mut s = 0u32;
            while i < end {
                s += (a[i] ^ b[i]).count_ones();
                i += 1;
            }
            d += s;
            if d > bound {
                break;
            }
        }
        d
    }

    /// Two-sided early-exit Hamming distance at the shared
    /// [`SCAN_BLOCK_WORDS64`]-word block granularity. Scalar `popcnt`
    /// for the same reason as [`hamming_bounded`]: the block partials
    /// must equal the portable level's exactly.
    ///
    /// # Safety
    ///
    /// Requires POPCNT and `a.len() == b.len()`.
    #[target_feature(enable = "popcnt")]
    pub(super) unsafe fn hamming_threshold(a: &[u64], b: &[u64], prune: u32, accept: u32) -> u32 {
        let n = a.len();
        let mut d = 0u32;
        let mut i = 0;
        while i < n {
            let end = (i + SCAN_BLOCK_WORDS64).min(n);
            let mut s = 0u32;
            while i < end {
                s += (a[i] ^ b[i]).count_ones();
                i += 1;
            }
            d += s;
            // Same check order as the portable lane: abandon, then
            // early-accept.
            if d > prune {
                break;
            }
            if u64::from(d) + ((n - i) as u64) * 64 <= u64::from(accept) {
                break;
            }
        }
        d
    }

    /// # Safety
    ///
    /// Requires AVX2 and equal slice lengths.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn or_into(a: &[u64], b: &[u64], out: &mut [u64]) {
        let n = out.len();
        let mut i = 0;
        while i + 4 <= n {
            // SAFETY: the loop bound keeps every 4-word lane in range;
            // AVX2 flows from the enclosing `#[target_feature]` contract.
            let v = unsafe { _mm256_or_si256(loadu(a, i), loadu(b, i)) };
            // SAFETY: same bound as the load above.
            unsafe { storeu(out, i, v) };
            i += 4;
        }
        while i < n {
            out[i] = a[i] | b[i];
            i += 1;
        }
    }

    /// Full adder over 256-bit lanes.
    ///
    /// # Safety
    ///
    /// Requires AVX2.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn full_add_v(a: __m256i, b: __m256i, c: __m256i) -> (__m256i, __m256i) {
        // SAFETY: register-only intrinsics; AVX2 flows from the
        // enclosing `#[target_feature]` contract.
        unsafe {
            let ab = _mm256_xor_si256(a, b);
            (
                _mm256_xor_si256(ab, c),
                _mm256_or_si256(_mm256_and_si256(a, b), _mm256_and_si256(c, ab)),
            )
        }
    }

    /// # Safety
    ///
    /// Requires AVX2 and equal slice lengths.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn maj3_into(x0: &[u64], x1: &[u64], x2: &[u64], out: &mut [u64]) {
        let n = out.len();
        let mut i = 0;
        while i + 4 <= n {
            // SAFETY: the loop bound keeps every 4-word lane in range;
            // AVX2 flows from the enclosing `#[target_feature]` contract.
            let (_, maj) = unsafe { full_add_v(loadu(x0, i), loadu(x1, i), loadu(x2, i)) };
            // SAFETY: same bound as the load above.
            unsafe { storeu(out, i, maj) };
            i += 4;
        }
        while i < n {
            let (_, maj) = super::full_add(x0[i], x1[i], x2[i]);
            out[i] = maj;
            i += 1;
        }
    }

    /// Two full adders + combine: count ≥ 3 of 5 ⇔ both carries, or one
    /// carry plus the final sum bit.
    ///
    /// # Safety
    ///
    /// Requires AVX2.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn maj5_v(a: __m256i, b: __m256i, c: __m256i, d: __m256i, e: __m256i) -> __m256i {
        // SAFETY: register-only intrinsics; AVX2 flows from the
        // enclosing `#[target_feature]` contract.
        unsafe {
            let (s1, c1) = full_add_v(a, b, c);
            let (s2, c2) = full_add_v(s1, d, e);
            _mm256_or_si256(
                _mm256_and_si256(c1, c2),
                _mm256_and_si256(_mm256_or_si256(c1, c2), s2),
            )
        }
    }

    /// # Safety
    ///
    /// Requires AVX2 and equal slice lengths.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn maj5_into(
        x0: &[u64],
        x1: &[u64],
        x2: &[u64],
        x3: &[u64],
        x4: &[u64],
        out: &mut [u64],
    ) {
        let n = out.len();
        let mut i = 0;
        while i + 4 <= n {
            // SAFETY: the loop bound keeps every 4-word lane in range;
            // AVX2 flows from the enclosing `#[target_feature]` contract.
            let v = unsafe {
                maj5_v(
                    loadu(x0, i),
                    loadu(x1, i),
                    loadu(x2, i),
                    loadu(x3, i),
                    loadu(x4, i),
                )
            };
            // SAFETY: same bound as the load above.
            unsafe { storeu(out, i, v) };
            i += 4;
        }
        while i < n {
            let (s1, c1) = super::full_add(x0[i], x1[i], x2[i]);
            let (s2, c2) = super::full_add(s1, x3[i], x4[i]);
            out[i] = (c1 & c2) | ((c1 | c2) & s2);
            i += 1;
        }
    }

    /// # Safety
    ///
    /// Requires AVX2 and equal slice lengths.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn maj5_tie_into(
        x0: &[u64],
        x1: &[u64],
        x2: &[u64],
        x3: &[u64],
        out: &mut [u64],
    ) {
        let n = out.len();
        let mut i = 0;
        while i + 4 <= n {
            // SAFETY: the loop bound keeps every 4-word lane in range;
            // AVX2 flows from the enclosing `#[target_feature]` contract.
            let (a, b) = unsafe { (loadu(x0, i), loadu(x1, i)) };
            // SAFETY: register-only intrinsics; AVX2 flows from the
            // enclosing `#[target_feature]` contract.
            let tie = unsafe { _mm256_xor_si256(a, b) };
            // SAFETY: the remaining load shares the `i + 4 <= n` bound;
            // the majority network itself is register-only.
            let v = unsafe { maj5_v(a, b, loadu(x2, i), loadu(x3, i), tie) };
            // SAFETY: same bound as the load above.
            unsafe { storeu(out, i, v) };
            i += 4;
        }
        while i < n {
            let (s1, c1) = super::full_add(x0[i], x1[i], x2[i]);
            let (s2, c2) = super::full_add(s1, x3[i], x0[i] ^ x1[i]);
            out[i] = (c1 & c2) | ((c1 | c2) & s2);
            i += 1;
        }
    }

    /// The carry-save bundling planes held in `__m256i` registers: the
    /// same ripple/borrow network as the portable level, voting over
    /// 256 components per step. Tail words run the portable loop.
    ///
    /// # Safety
    ///
    /// Requires AVX2; every `get(i)` must be at least `out.len()` words.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn ripple_majority_into<'a, F>(
        n: usize,
        get: &F,
        even_tie: bool,
        threshold: u32,
        out: &mut [u64],
    ) where
        F: Fn(usize) -> &'a [u64],
    {
        let t_bits = (32 - threshold.leading_zeros()) as usize;
        let n_words = out.len();
        let mut wi = 0;
        while wi + 4 <= n_words {
            // SAFETY: `wi + 4 <= n_words` bounds every lane; each
            // `get(i)` slice matches `out` per the caller contract;
            // AVX2 flows from the enclosing `#[target_feature]` contract.
            unsafe {
                let zero = _mm256_setzero_si256();
                let mut planes = [zero; RIPPLE_PLANES];
                let mut used = 0usize;
                for i in 0..n {
                    let w = loadu(get(i), wi);
                    used = used.max(ripple_v(&mut planes, w));
                }
                if even_tie {
                    let tie = _mm256_xor_si256(loadu(get(0), wi), loadu(get(1), wi));
                    used = used.max(ripple_v(&mut planes, tie));
                }
                let ones = _mm256_set1_epi8(-1);
                let mut borrow = zero;
                for (p, &plane) in planes.iter().enumerate().take(used.max(t_bits)) {
                    let t = if threshold >> p & 1 == 1 { ones } else { zero };
                    let t_or_b = _mm256_or_si256(t, borrow);
                    borrow = _mm256_or_si256(
                        _mm256_andnot_si256(plane, t_or_b),
                        _mm256_and_si256(t, borrow),
                    );
                }
                storeu(out, wi, _mm256_xor_si256(borrow, ones));
            }
            wi += 4;
        }
        super::portable::ripple_majority_from(n, get, even_tie, threshold, out, wi);
    }

    /// Ripple-carry increment of the vertical counters by one 256-bit
    /// input; returns the number of planes touched.
    ///
    /// # Safety
    ///
    /// Requires AVX2; the caller bounds the vote count below
    /// `2^RIPPLE_PLANES`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn ripple_v(planes: &mut [__m256i; RIPPLE_PLANES], w: __m256i) -> usize {
        let mut carry = w;
        let mut p = 0;
        // SAFETY: register-only intrinsics; the caller bounds the
        // vote count so `p` never reaches RIPPLE_PLANES; AVX2 flows
        // from the enclosing `#[target_feature]` contract.
        unsafe {
            while _mm256_testz_si256(carry, carry) == 0 {
                let t = _mm256_and_si256(planes[p], carry);
                planes[p] = _mm256_xor_si256(planes[p], carry);
                carry = t;
                p += 1;
            }
        }
        p
    }

    /// # Safety
    ///
    /// Requires AVX2 and `plane.len() == carry.len()`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn csa_step(plane: &mut [u64], carry: &mut [u64]) -> bool {
        let n = plane.len();
        // SAFETY: register-only intrinsics; AVX2 flows from the
        // enclosing `#[target_feature]` contract.
        let mut any = unsafe { _mm256_setzero_si256() };
        let mut i = 0;
        while i + 4 <= n {
            // SAFETY: the loop bound keeps every 4-word lane in range;
            // AVX2 flows from the enclosing `#[target_feature]` contract.
            unsafe {
                let p = loadu(plane, i);
                let c = loadu(carry, i);
                let t = _mm256_and_si256(p, c);
                storeu(plane, i, _mm256_xor_si256(p, c));
                storeu(carry, i, t);
                any = _mm256_or_si256(any, t);
            }
            i += 4;
        }
        let mut scalar_any = 0u64;
        while i < n {
            let t = plane[i] & carry[i];
            plane[i] ^= carry[i];
            carry[i] = t;
            scalar_any |= t;
            i += 1;
        }
        // SAFETY: register-only intrinsics; AVX2 flows from the
        // enclosing `#[target_feature]` contract.
        scalar_any != 0 || unsafe { _mm256_testz_si256(any, any) } == 0
    }

    /// The seeded-tie counter threshold over 256-bit lanes; tail words
    /// run the portable loop.
    ///
    /// # Safety
    ///
    /// Requires AVX2; every `planes(p)` for `p < n_planes` and `tie`
    /// must be at least `out.len()` words.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn counter_majority_into<'a, F>(
        planes: &F,
        n_planes: usize,
        n: u32,
        tie: &[u64],
        out: &mut [u64],
    ) where
        F: Fn(usize) -> &'a [u64],
    {
        let threshold = n / 2 + 1;
        let even = n % 2 == 0;
        let half = n / 2;
        let t_bits = (32 - threshold.leading_zeros()) as usize;
        let p_max = n_planes.max(t_bits);
        let n_words = out.len();
        let mut wi = 0;
        while wi + 4 <= n_words {
            // SAFETY: `wi + 4 <= n_words` bounds every lane; each
            // `planes(p)` slice matches `out` per the caller contract;
            // AVX2 flows from the enclosing `#[target_feature]` contract.
            unsafe {
                let zero = _mm256_setzero_si256();
                let ones = _mm256_set1_epi8(-1);
                let mut borrow = zero;
                let mut eq = ones;
                for p in 0..p_max {
                    let plane = if p < n_planes {
                        loadu(planes(p), wi)
                    } else {
                        zero
                    };
                    let t = if threshold >> p & 1 == 1 { ones } else { zero };
                    let t_or_b = _mm256_or_si256(t, borrow);
                    borrow = _mm256_or_si256(
                        _mm256_andnot_si256(plane, t_or_b),
                        _mm256_and_si256(t, borrow),
                    );
                    let h = if half >> p & 1 == 1 { ones } else { zero };
                    eq = _mm256_andnot_si256(_mm256_xor_si256(plane, h), eq);
                }
                let gt = _mm256_xor_si256(borrow, ones);
                let v = if even {
                    _mm256_or_si256(gt, _mm256_and_si256(eq, loadu(tie, wi)))
                } else {
                    gt
                };
                storeu(out, wi, v);
            }
            wi += 4;
        }
        super::portable::counter_majority_from(planes, n_planes, n, tie, out, wi);
    }

    /// Fused bind-rotate, exploiting that the shift and wrap
    /// contributions of a rotation touch disjoint bit positions, so
    /// `dst ^= rot(src)` splits into two independent XOR passes (each
    /// vectorized over its in-bounds interior, scalar at the edges).
    /// The top word always runs the portable path with the tail mask.
    ///
    /// # Safety
    ///
    /// Requires AVX2 and `dst.len() == src.len() >= 1`.
    #[target_feature(enable = "avx2")]
    #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
    pub(super) unsafe fn xor_rotated_into(dst: &mut [u64], src: &[u64], g: &RotGeom) {
        let n = dst.len();
        let last = n - 1;
        let sw = g.shl_words;
        let rw = g.shr_words;
        // SAFETY: every 4-word load/store index is bounded by the
        // rotation-geometry loop conditions (`j + 4 <= last` with
        // offsets `j - sw` / `j + rw` kept in range by RotGeom);
        // AVX2 flows from the enclosing `#[target_feature]` contract.
        unsafe {
            // Pass A: the `<< k` contribution, nonzero for j >= sw.
            if sw < last {
                dst[sw] ^= g.shl_part(src, sw);
                let sb = _mm_cvtsi32_si128(g.shl_bits as i32);
                let sb_inv = _mm_cvtsi32_si128(64 - g.shl_bits as i32);
                let mut j = sw + 1;
                while j + 4 <= last {
                    let lo = _mm256_sll_epi64(loadu(src, j - sw), sb);
                    // Shift counts >= 64 yield zero in SIMD, which is
                    // exactly the vanishing carry of shl_bits == 0.
                    let carry = _mm256_srl_epi64(loadu(src, j - sw - 1), sb_inv);
                    let r = _mm256_or_si256(lo, carry);
                    storeu(dst, j, _mm256_xor_si256(loadu(dst, j), r));
                    j += 4;
                }
                while j < last {
                    dst[j] ^= g.shl_part(src, j);
                    j += 1;
                }
            }
            // Pass B: the `>> (dim - k)` wrap, nonzero while j + rw < n.
            let end = last.min(n.saturating_sub(rw));
            let vec_end = end.min(n.saturating_sub(rw + 1));
            let rb = _mm_cvtsi32_si128(g.shr_bits as i32);
            let rb_inv = _mm_cvtsi32_si128(64 - g.shr_bits as i32);
            let mut j = 0;
            while j + 4 <= vec_end {
                let hi = _mm256_srl_epi64(loadu(src, j + rw), rb);
                let carry = _mm256_sll_epi64(loadu(src, j + rw + 1), rb_inv);
                let r = _mm256_or_si256(hi, carry);
                storeu(dst, j, _mm256_xor_si256(loadu(dst, j), r));
                j += 4;
            }
            while j < end {
                dst[j] ^= g.shr_part(src, j);
                j += 1;
            }
        }
        dst[last] ^= g.word(src, last) & g.tail_mask();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256PlusPlus;

    /// Every level available on this machine, the portable reference
    /// first.
    fn levels() -> Vec<Simd> {
        let mut all = vec![Simd::Portable];
        #[cfg(target_arch = "x86_64")]
        if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("popcnt") {
            all.push(Simd::Avx2);
        }
        all
    }

    fn words(n: usize, rng: &mut Xoshiro256PlusPlus) -> Vec<u64> {
        (0..n).map(|_| rng.next_u64()).collect()
    }

    /// Lengths crossing every unroll boundary: sub-lane, one lane, the
    /// 8-word scan block, misaligned tails, and the real 313-u32 width
    /// (157 u64 words).
    const LENGTHS: [usize; 8] = [1, 3, 4, 7, 8, 17, 64, 157];

    /// One test for everything that reads *and* writes the process-wide
    /// `ACTIVE` state: split across `#[test]`s these assertions would
    /// race each other under the parallel test runner (another test
    /// flipping the level between two `active()` calls).
    #[test]
    fn detection_is_stable_and_set_active_overrides_and_restores() {
        assert_eq!(Simd::Portable.name(), "portable");
        assert_eq!(Simd::detect(), Simd::detect());
        let before = Simd::active();
        Simd::set_active(Simd::Portable);
        assert_eq!(Simd::active(), Simd::Portable);
        Simd::set_active(before);
        assert_eq!(Simd::active(), before);
    }

    #[test]
    fn xor_and_or_match_wordwise_reference_on_all_levels() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(0x51);
        for level in levels() {
            for len in LENGTHS {
                let a = words(len, &mut rng);
                let b = words(len, &mut rng);
                let expected_xor: Vec<u64> = a.iter().zip(&b).map(|(x, y)| x ^ y).collect();
                let mut dst = a.clone();
                level.xor_into(&mut dst, &b);
                assert_eq!(dst, expected_xor, "{level:?} xor len {len}");
                let expected_or: Vec<u64> = a.iter().zip(&b).map(|(x, y)| x | y).collect();
                let mut out = vec![0u64; len];
                level.or_into(&a, &b, &mut out);
                assert_eq!(out, expected_or, "{level:?} or len {len}");
            }
        }
    }

    #[test]
    fn popcount_and_hamming_match_reference_on_all_levels() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(0x52);
        for level in levels() {
            for len in LENGTHS {
                let a = words(len, &mut rng);
                let b = words(len, &mut rng);
                let pop: u32 = a.iter().map(|w| w.count_ones()).sum();
                let ham: u32 = a.iter().zip(&b).map(|(x, y)| (x ^ y).count_ones()).sum();
                assert_eq!(level.popcount(&a), pop, "{level:?} popcount len {len}");
                assert_eq!(level.hamming(&a, &b), ham, "{level:?} hamming len {len}");
            }
        }
    }

    /// The bounded scan's block-partial results are pinned across
    /// levels: identical abandonment points, identical partial sums.
    #[test]
    fn hamming_bounded_is_block_exact_and_level_independent() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(0x53);
        for len in LENGTHS {
            for case in 0..8 {
                let a = words(len, &mut rng);
                let b = words(len, &mut rng);
                let exact: u32 = a.iter().zip(&b).map(|(x, y)| (x ^ y).count_ones()).sum();
                let bound = rng.next_below(exact.max(1) + 32);
                // Block-semantics reference.
                let mut expected = 0u32;
                for (ba, bb) in a
                    .chunks(SCAN_BLOCK_WORDS64)
                    .zip(b.chunks(SCAN_BLOCK_WORDS64))
                {
                    expected += ba
                        .iter()
                        .zip(bb)
                        .map(|(x, y)| (x ^ y).count_ones())
                        .sum::<u32>();
                    if expected > bound {
                        break;
                    }
                }
                for level in levels() {
                    let got = level.hamming_bounded(&a, &b, bound);
                    assert_eq!(got, expected, "{level:?} len {len} case {case}");
                }
                // An unreachable bound yields the exact distance.
                for level in levels() {
                    assert_eq!(level.hamming_bounded(&a, &b, u32::MAX), exact);
                }
            }
        }
    }

    /// The two-sided threshold scan's stopping points and partial sums
    /// are pinned across levels by a block-semantics reference that
    /// applies the documented checks (abandon first, then early-accept)
    /// at every block boundary.
    #[test]
    fn hamming_threshold_is_block_exact_and_level_independent() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(0x55);
        for len in LENGTHS {
            for case in 0..12 {
                let a = words(len, &mut rng);
                let b = words(len, &mut rng);
                let exact: u32 = a.iter().zip(&b).map(|(x, y)| (x ^ y).count_ones()).sum();
                let prune = rng.next_below(exact.max(1) + 32);
                let accept = rng.next_below(exact.max(1) + 32);
                // Block-semantics reference.
                let n = len;
                let mut expected = 0u32;
                let mut i = 0;
                while i < n {
                    let end = (i + SCAN_BLOCK_WORDS64).min(n);
                    expected += a[i..end]
                        .iter()
                        .zip(&b[i..end])
                        .map(|(x, y)| (x ^ y).count_ones())
                        .sum::<u32>();
                    i = end;
                    if expected > prune {
                        break;
                    }
                    if u64::from(expected) + ((n - i) as u64) * 64 <= u64::from(accept) {
                        break;
                    }
                }
                for level in levels() {
                    let got = level.hamming_threshold(&a, &b, prune, accept);
                    assert_eq!(got, expected, "{level:?} len {len} case {case}");
                    // Every early exit returns a lower bound on the
                    // exact distance.
                    assert!(got <= exact, "{level:?} len {len} case {case}");
                    // A non-abandon early exit is an accept: it
                    // certifies the exact distance is within the
                    // acceptance bound. (When `prune < accept` an
                    // abandoned partial can also land `<= accept`,
                    // which certifies nothing — real callers keep
                    // `prune > accept` so that ambiguity never
                    // arises.)
                    if got <= prune && got <= accept && got < exact {
                        assert!(exact <= accept, "{level:?} len {len} case {case}");
                    }
                }
                for level in levels() {
                    // Neither side reachable: the exact distance.
                    assert_eq!(level.hamming_threshold(&a, &b, u32::MAX, 0), exact);
                    // An always-true accept stops after the first block.
                    let first = a[..SCAN_BLOCK_WORDS64.min(n)]
                        .iter()
                        .zip(&b[..SCAN_BLOCK_WORDS64.min(n)])
                        .map(|(x, y)| (x ^ y).count_ones())
                        .sum::<u32>();
                    assert_eq!(level.hamming_threshold(&a, &b, u32::MAX, u32::MAX), first);
                    // A zero prune abandons at the first block whenever
                    // it is nonzero.
                    if first > 0 {
                        assert_eq!(level.hamming_threshold(&a, &b, 0, 0), first);
                    }
                }
            }
        }
    }

    #[test]
    fn majority_networks_match_counting_reference_on_all_levels() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(0x54);
        let count_maj = |inputs: &[&[u64]], j: usize| -> u64 {
            let mut out = 0u64;
            for bit in 0..64 {
                let votes = inputs.iter().filter(|x| x[j] >> bit & 1 == 1).count();
                if 2 * votes > inputs.len() {
                    out |= 1 << bit;
                }
            }
            out
        };
        for level in levels() {
            for len in LENGTHS {
                let xs: Vec<Vec<u64>> = (0..5).map(|_| words(len, &mut rng)).collect();
                let mut out = vec![0u64; len];

                level.maj3_into(&xs[0], &xs[1], &xs[2], &mut out);
                let refs3: Vec<&[u64]> = xs[..3].iter().map(Vec::as_slice).collect();
                for (j, &o) in out.iter().enumerate() {
                    assert_eq!(o, count_maj(&refs3, j), "{level:?} maj3 len {len}");
                }

                level.maj5_into(&xs[0], &xs[1], &xs[2], &xs[3], &xs[4], &mut out);
                let refs5: Vec<&[u64]> = xs.iter().map(Vec::as_slice).collect();
                for (j, &o) in out.iter().enumerate() {
                    assert_eq!(o, count_maj(&refs5, j), "{level:?} maj5 len {len}");
                }

                level.maj5_tie_into(&xs[0], &xs[1], &xs[2], &xs[3], &mut out);
                let tie: Vec<u64> = xs[0].iter().zip(&xs[1]).map(|(a, b)| a ^ b).collect();
                let refs_tie: Vec<&[u64]> = xs[..4]
                    .iter()
                    .map(Vec::as_slice)
                    .chain(std::iter::once(tie.as_slice()))
                    .collect();
                for (j, &o) in out.iter().enumerate() {
                    assert_eq!(o, count_maj(&refs_tie, j), "{level:?} maj5_tie len {len}");
                }
            }
        }
    }

    #[test]
    fn ripple_majority_matches_counting_reference_on_all_levels() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(0x55);
        for level in levels() {
            for len in [1usize, 4, 7, 11] {
                for n in [3usize, 6, 7, 9, 21] {
                    let xs: Vec<Vec<u64>> = (0..n).map(|_| words(len, &mut rng)).collect();
                    let even = n % 2 == 0;
                    let n_eff = n + usize::from(even);
                    #[allow(clippy::cast_possible_truncation)]
                    let threshold = (n_eff / 2 + 1) as u32;
                    let mut out = vec![0u64; len];
                    level.ripple_majority_into(n, |i| xs[i].as_slice(), even, threshold, &mut out);
                    // Counting reference with the tie vector appended.
                    let tie: Vec<u64> = xs[0].iter().zip(&xs[1]).map(|(a, b)| a ^ b).collect();
                    for (j, &got) in out.iter().enumerate() {
                        let mut expected = 0u64;
                        for bit in 0..64 {
                            let mut votes = xs.iter().filter(|x| x[j] >> bit & 1 == 1).count();
                            if even && tie[j] >> bit & 1 == 1 {
                                votes += 1;
                            }
                            if votes as u32 >= threshold {
                                expected |= 1 << bit;
                            }
                        }
                        assert_eq!(got, expected, "{level:?} len {len} n {n} word {j}");
                    }
                }
            }
        }
    }

    /// One `csa_step` must behave as a per-counter half addition:
    /// chained over a fresh plane stack it counts input vectors exactly.
    #[test]
    fn csa_step_chains_into_exact_counters_on_all_levels() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(0x58);
        for level in levels() {
            for len in LENGTHS {
                for n in [1usize, 2, 3, 5, 8, 13] {
                    let inputs: Vec<Vec<u64>> = (0..n).map(|_| words(len, &mut rng)).collect();
                    let mut planes: Vec<Vec<u64>> = Vec::new();
                    let mut carry = vec![0u64; len];
                    for input in &inputs {
                        carry.copy_from_slice(input);
                        let mut p = 0;
                        let mut pending = true;
                        while pending {
                            if p == planes.len() {
                                planes.push(vec![0u64; len]);
                            }
                            pending = level.csa_step(&mut planes[p], &mut carry);
                            p += 1;
                        }
                    }
                    // Decode the vertical counters and compare against a
                    // naive per-bit count.
                    for j in 0..len {
                        for bit in 0..64 {
                            let expected =
                                inputs.iter().filter(|x| x[j] >> bit & 1 == 1).count() as u64;
                            let got = planes
                                .iter()
                                .enumerate()
                                .map(|(p, plane)| (plane[j] >> bit & 1) << p)
                                .sum::<u64>();
                            assert_eq!(got, expected, "{level:?} len {len} n {n} word {j}");
                        }
                    }
                }
            }
        }
    }

    /// The seeded-tie threshold against a naive counting reference,
    /// covering odd counts (no ties possible), even counts with forced
    /// exact ties, and counter stacks shorter than the threshold width.
    #[test]
    fn counter_majority_matches_counting_reference_on_all_levels() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(0x59);
        for level in levels() {
            for len in LENGTHS {
                for n in [1usize, 2, 3, 4, 5, 6, 9, 12, 21] {
                    let inputs: Vec<Vec<u64>> = (0..n).map(|_| words(len, &mut rng)).collect();
                    let tie = words(len, &mut rng);
                    // Accumulate planes with the (already verified) csa
                    // chain.
                    let mut planes: Vec<Vec<u64>> = Vec::new();
                    let mut carry = vec![0u64; len];
                    for input in &inputs {
                        carry.copy_from_slice(input);
                        let mut p = 0;
                        let mut pending = true;
                        while pending {
                            if p == planes.len() {
                                planes.push(vec![0u64; len]);
                            }
                            pending = Simd::Portable.csa_step(&mut planes[p], &mut carry);
                            p += 1;
                        }
                    }
                    let mut out = vec![u64::MAX; len]; // dirty
                    #[allow(clippy::cast_possible_truncation)]
                    level.counter_majority_into(
                        |p| planes[p].as_slice(),
                        planes.len(),
                        n as u32,
                        &tie,
                        &mut out,
                    );
                    for (j, &got) in out.iter().enumerate() {
                        let mut expected = 0u64;
                        for bit in 0..64 {
                            let votes = inputs.iter().filter(|x| x[j] >> bit & 1 == 1).count();
                            let set = match (2 * votes).cmp(&n) {
                                core::cmp::Ordering::Greater => true,
                                core::cmp::Ordering::Equal => tie[j] >> bit & 1 == 1,
                                core::cmp::Ordering::Less => false,
                            };
                            if set {
                                expected |= 1 << bit;
                            }
                        }
                        assert_eq!(got, expected, "{level:?} len {len} n {n} word {j}");
                    }
                }
            }
        }
    }

    /// Rotation against a naive per-bit reference, across widths with
    /// and without padding tails and shifts crossing every boundary
    /// (word-aligned, sub-word, near-dim).
    #[test]
    fn rotations_match_bitwise_reference_on_all_levels() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(0x56);
        let bit = |x: &[u64], i: usize| x[i / 64] >> (i % 64) & 1;
        for level in levels() {
            for dim in [32usize, 64, 96, 128, 160, 416, 10_016] {
                let n = dim.div_ceil(64);
                let mut src = words(n, &mut rng);
                if dim % 64 != 0 {
                    src[n - 1] &= (1u64 << (dim % 64)) - 1;
                }
                for k in [0usize, 1, 5, 31, 32, 63, 64, 65, 127, dim - 1, dim, dim + 7] {
                    let mut rotated = vec![0u64; n];
                    level.rotate_into_words(&mut rotated, &src, dim, k);
                    for i in 0..dim {
                        assert_eq!(
                            bit(&rotated, (i + k) % dim),
                            bit(&src, i),
                            "{level:?} dim {dim} k {k} bit {i}"
                        );
                    }
                    if dim % 64 != 0 {
                        assert_eq!(rotated[n - 1] >> (dim % 64), 0, "padding dirty");
                    }
                    // Fused form: dst ^= rot(src).
                    let mut dst = words(n, &mut rng);
                    if dim % 64 != 0 {
                        dst[n - 1] &= (1u64 << (dim % 64)) - 1;
                    }
                    let expected: Vec<u64> = dst.iter().zip(&rotated).map(|(d, r)| d ^ r).collect();
                    level.xor_rotated_words(&mut dst, &src, dim, k);
                    assert_eq!(expected, dst, "{level:?} dim {dim} k {k} fused");
                }
            }
        }
    }

    /// Randomized cross-level agreement on the rotation kernels — the
    /// AVX2 two-pass decomposition must equal the portable reference
    /// for arbitrary (dim, k).
    #[test]
    fn rotation_levels_agree_on_random_geometry() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(0x57);
        for case in 0..64 {
            let dim = 32 * (1 + rng.next_below(40) as usize);
            let n = dim.div_ceil(64);
            let mut src = words(n, &mut rng);
            if dim % 64 != 0 {
                src[n - 1] &= (1u64 << (dim % 64)) - 1;
            }
            let k = rng.next_below(2 * dim as u32 + 1) as usize;
            let mut reference = vec![0u64; n];
            Simd::Portable.rotate_into_words(&mut reference, &src, dim, k);
            for level in levels() {
                let mut got = vec![u64::MAX; n];
                level.rotate_into_words(&mut got, &src, dim, k);
                assert_eq!(got, reference, "case {case}: {level:?} dim {dim} k {k}");
            }
        }
    }
}
