//! `u64`-word packed hypervectors for throughput-oriented host execution.
//!
//! [`Hv64`] carries the exact bit pattern of a [`BinaryHv`] repacked two
//! `u32` words per `u64` word (component `i` is bit `i % 64` of word
//! `i / 64`), so every MAP operation runs over half as many words and
//! Hamming distances use 64-bit `count_ones`. Conversion to and from
//! [`BinaryHv`] is lossless in both directions, and every operation here
//! is bit-identical to its `u32` counterpart — the [`FastBackend`]
//! property tests pin this equivalence.
//!
//! The canonical width stays the `u32` word count of the golden model
//! (313 words ≙ "10,000-D"); when it is odd, the top `u64` word holds
//! only 32 valid components and its padding bits are kept at zero by
//! every constructor and operation.
//!
//! Besides the allocating operations, the module provides the
//! zero-allocation hot-path building blocks the fast backend's encode
//! loop is made of: in-place ops ([`Hv64::xor_assign`],
//! [`Hv64::rotate_into`], the fused bind-rotate [`Hv64::xor_rotated`]),
//! the streaming word-parallel majority accumulator
//! [`BitslicedBundler`], the early-exit associative-memory scan
//! [`scan_pruned_into`], and its approximate sibling
//! [`scan_threshold_into`] (accept-first-below-τ).
//!
//! Every word loop of those building blocks executes through the
//! runtime-dispatched kernel layer in [`crate::simd`]: an AVX2/POPCNT
//! specialization when the CPU has it, a portable unrolled fallback
//! otherwise, both bit-identical (see the `simd` module docs for the
//! dispatch and override rules).
//!
//! [`FastBackend`]: ../../pulp_hd_core/backend/fast/index.html
//! (in-repo: `crates/core/src/backend/fast.rs`)

use core::fmt;

use crate::hv::{BinaryHv, BITS_PER_WORD};
use crate::simd::Simd;

/// Number of binary components packed into one `u64` word.
pub const BITS_PER_WORD64: usize = 64;

/// A binary hypervector packed into `u64` words.
///
/// # Examples
///
/// ```
/// use hdc::{BinaryHv, Hv64};
///
/// let a = BinaryHv::random(313, 1);
/// let b = BinaryHv::random(313, 2);
/// let a64 = Hv64::from_binary(&a);
/// let b64 = Hv64::from_binary(&b);
/// // Same algebra, half the words: distances and bindings agree exactly.
/// assert_eq!(a64.hamming(&b64), a.hamming(&b));
/// assert_eq!(a64.bind(&b64).to_binary(), a.bind(&b));
/// assert_eq!(a64.to_binary(), a);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Hv64 {
    words: Box<[u64]>,
    /// Width in canonical `u32` words (`dim = n_words32 * 32`).
    n_words32: usize,
}

impl Hv64 {
    /// The all-zeros hypervector of the given canonical (`u32`) width —
    /// the scratch-buffer constructor.
    ///
    /// # Panics
    ///
    /// Panics if `n_words32 == 0`.
    #[must_use]
    pub fn zeros(n_words32: usize) -> Self {
        assert!(n_words32 > 0, "hypervector width must be at least one word");
        Self {
            words: vec![0u64; n_words32.div_ceil(2)].into_boxed_slice(),
            n_words32,
        }
    }

    /// Repacks a [`BinaryHv`] into `u64` words (lossless).
    #[must_use]
    pub fn from_binary(hv: &BinaryHv) -> Self {
        let w32 = hv.words();
        let mut words = Vec::with_capacity(w32.len().div_ceil(2));
        for pair in w32.chunks(2) {
            let lo = u64::from(pair[0]);
            let hi = pair.get(1).map_or(0, |&h| u64::from(h) << 32);
            words.push(lo | hi);
        }
        Self {
            words: words.into_boxed_slice(),
            n_words32: w32.len(),
        }
    }

    /// Unpacks back into the canonical `u32`-word representation
    /// (lossless; `to_binary(from_binary(x)) == x`).
    #[must_use]
    pub fn to_binary(&self) -> BinaryHv {
        let mut w32 = Vec::with_capacity(self.n_words32);
        for (i, &w) in self.words.iter().enumerate() {
            w32.push(w as u32);
            if 2 * i + 1 < self.n_words32 {
                w32.push((w >> 32) as u32);
            }
        }
        BinaryHv::from_words(w32)
    }

    /// Dimensionality (number of binary components, a multiple of 32).
    #[must_use]
    pub fn dim(&self) -> usize {
        self.n_words32 * BITS_PER_WORD
    }

    /// Number of packed `u64` words.
    #[must_use]
    pub fn n_words(&self) -> usize {
        self.words.len()
    }

    /// Width in canonical `u32` words (matches the golden model).
    #[must_use]
    pub fn n_words32(&self) -> usize {
        self.n_words32
    }

    /// The packed words, little-endian in component order.
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Number of components set to one.
    #[must_use]
    pub fn count_ones(&self) -> u32 {
        Simd::active().popcount(&self.words)
    }

    /// Componentwise XOR — the HD *multiplication* (binding) operation.
    ///
    /// # Panics
    ///
    /// Panics if the operands have different widths.
    #[must_use]
    pub fn bind(&self, other: &Self) -> Self {
        let mut out = self.clone();
        out.bind_assign(other);
        out
    }

    /// In-place componentwise XOR.
    ///
    /// # Panics
    ///
    /// Panics if the operands have different widths.
    pub fn bind_assign(&mut self, other: &Self) {
        self.xor_assign(other);
    }

    /// In-place componentwise XOR (`self ^= other`), the borrowing form
    /// of [`bind`](Self::bind).
    ///
    /// # Panics
    ///
    /// Panics if the operands have different widths.
    pub fn xor_assign(&mut self, other: &Self) {
        assert_eq!(
            self.n_words32, other.n_words32,
            "hypervector width mismatch: {} vs {} u32 words",
            self.n_words32, other.n_words32
        );
        Simd::active().xor_into(&mut self.words, &other.words);
    }

    /// Overwrites `self` with `other`'s bit pattern without allocating.
    ///
    /// # Panics
    ///
    /// Panics if the operands have different widths.
    pub fn copy_from(&mut self, other: &Self) {
        assert_eq!(
            self.n_words32, other.n_words32,
            "hypervector width mismatch: {} vs {} u32 words",
            self.n_words32, other.n_words32
        );
        self.words.copy_from_slice(&other.words);
    }

    /// Hamming distance via 64-bit popcount.
    ///
    /// # Panics
    ///
    /// Panics if the operands have different widths.
    #[must_use]
    pub fn hamming(&self, other: &Self) -> u32 {
        assert_eq!(
            self.n_words32, other.n_words32,
            "hypervector width mismatch: {} vs {} u32 words",
            self.n_words32, other.n_words32
        );
        Simd::active().hamming(&self.words, &other.words)
    }

    /// ρᵏ: rotates all components left by `k` positions modulo the
    /// dimension, bit-identical to [`BinaryHv::rotate`].
    #[must_use]
    pub fn rotate(&self, k: usize) -> Self {
        let mut out = Self::zeros(self.n_words32);
        self.rotate_into(k, &mut out);
        out
    }

    /// ρᵏ into a caller-owned buffer: `out = rotate(self, k)` without
    /// allocating. `out`'s previous contents are overwritten.
    ///
    /// # Panics
    ///
    /// Panics if `out` has a different width (aliasing is impossible:
    /// `self` is borrowed shared and `out` mutably).
    pub fn rotate_into(&self, k: usize, out: &mut Self) {
        assert_eq!(
            self.n_words32, out.n_words32,
            "hypervector width mismatch: {} vs {} u32 words",
            self.n_words32, out.n_words32
        );
        Simd::active().rotate_into_words(&mut out.words, &self.words, self.dim(), k);
    }

    /// Fused bind-rotate: `self ^= rotate(other, k)` with no temporary
    /// hypervector — the inner step of N-gram encoding
    /// (`gram ⊕= ρᵏ spatialₖ`), computed word by word.
    ///
    /// # Panics
    ///
    /// Panics if the operands have different widths.
    pub fn xor_rotated(&mut self, other: &Self, k: usize) {
        assert_eq!(
            self.n_words32, other.n_words32,
            "hypervector width mismatch: {} vs {} u32 words",
            self.n_words32, other.n_words32
        );
        let dim = self.dim();
        Simd::active().xor_rotated_words(&mut self.words, &other.words, dim, k);
    }
}

impl fmt::Debug for Hv64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Hv64 {{ dim: {}, words: [", self.dim())?;
        for (i, w) in self.words.iter().take(2).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{w:#018x}")?;
        }
        if self.words.len() > 2 {
            write!(f, ", …")?;
        }
        write!(f, "] }}")
    }
}

/// Encodes a sequence into one N-gram, bit-identical to
/// [`crate::encoder::ngram`]: `hvs[0] ⊕ ρ¹hvs[1] ⊕ … ⊕ ρᴺ⁻¹hvs[N−1]`.
///
/// # Panics
///
/// Panics if `hvs` is empty or widths differ.
#[must_use]
pub fn ngram64(hvs: &[Hv64]) -> Hv64 {
    assert!(!hvs.is_empty(), "n-gram of an empty sequence is undefined");
    let mut out = hvs[0].clone();
    for (k, hv) in hvs.iter().enumerate().skip(1) {
        out.bind_assign(&hv.rotate(k));
    }
    out
}

/// Majority with the *paper's kernel policy*, bit-identical to
/// [`crate::bundle::majority_paper`]: an even input count appends the
/// XOR of the first two inputs as the tie-break vector, making the vote
/// effectively odd.
///
/// Takes references so hot paths can vote over item-memory entries
/// without cloning.
///
/// # Panics
///
/// Panics if `inputs` is empty or widths differ.
///
/// # Examples
///
/// ```
/// use hdc::bundle::majority_paper;
/// use hdc::hv64::{majority_paper64, Hv64};
/// use hdc::BinaryHv;
///
/// let inputs: Vec<BinaryHv> = (0..4).map(|s| BinaryHv::random(313, s)).collect();
/// let packed: Vec<Hv64> = inputs.iter().map(Hv64::from_binary).collect();
/// let refs: Vec<&Hv64> = packed.iter().collect();
/// assert_eq!(majority_paper64(&refs).to_binary(), majority_paper(&inputs));
/// ```
#[must_use]
pub fn majority_paper64(inputs: &[&Hv64]) -> Hv64 {
    assert!(!inputs.is_empty(), "majority of an empty set is undefined");
    if inputs.len() == 1 {
        return inputs[0].clone();
    }
    let tie = if inputs.len() % 2 == 0 {
        Some(inputs[0].bind(inputs[1]))
    } else {
        None
    };
    let refs: Vec<&Hv64> = inputs.iter().copied().chain(tie.as_ref()).collect();
    majority_odd_bitsliced64(&refs)
}

/// Componentwise majority of an odd number of equally wide packed
/// hypervectors — the `u64`-lane version of
/// [`crate::bundle::majority_odd_bitsliced`], voting over 64 components
/// per word-operation.
///
/// # Panics
///
/// Panics if `inputs` is empty, has an even length, or widths differ.
#[must_use]
pub fn majority_odd_bitsliced64(inputs: &[&Hv64]) -> Hv64 {
    assert!(!inputs.is_empty(), "majority of an empty set is undefined");
    assert!(
        inputs.len() % 2 == 1,
        "bit-sliced majority requires an odd input count"
    );
    let n_words32 = inputs[0].n_words32;
    for hv in inputs {
        assert_eq!(
            hv.n_words32, n_words32,
            "majority width mismatch: expected {n_words32} u32 words, got {}",
            hv.n_words32
        );
    }
    let n = inputs.len() as u32;
    let threshold = n / 2 + 1;
    let n_planes = (32 - n.leading_zeros()) as usize;
    let n_words = inputs[0].words.len();
    let mut out = Vec::with_capacity(n_words);
    let mut planes = vec![0u64; n_planes];
    for wi in 0..n_words {
        planes.fill(0);
        for hv in inputs {
            // Ripple-carry increment of the vertical counters.
            let mut carry = hv.words[wi];
            for plane in planes.iter_mut() {
                let t = *plane & carry;
                *plane ^= carry;
                carry = t;
            }
            debug_assert_eq!(carry, 0, "counter planes sized for n inputs");
        }
        // count >= threshold ⇔ (count - threshold) does not borrow.
        // Padding lanes count zero and threshold >= 1, so they borrow
        // and stay clear.
        let mut borrow = 0u64;
        for (p, &plane) in planes.iter().enumerate() {
            let t = if threshold >> p & 1 == 1 { u64::MAX } else { 0 };
            borrow = (!plane & (t | borrow)) | (t & borrow);
        }
        out.push(!borrow);
    }
    let tail = (n_words32 * BITS_PER_WORD) % BITS_PER_WORD64;
    if tail != 0 {
        out[n_words - 1] &= (1u64 << tail) - 1;
    }
    Hv64 {
        words: out.into_boxed_slice(),
        n_words32,
    }
}

/// Streaming word-parallel majority accumulator — the zero-allocation
/// bundling engine of the fast backend's hot path.
///
/// Hypervectors are [`add`](Self::add)ed one at a time into vertical
/// (bit-sliced) carry-save counters: plane `p` holds bit `p` of the
/// per-component vote count for 64 components per word, so each add is a
/// ripple-carry increment using only word-wide AND/XOR, and the final
/// threshold comparison is a word-wide borrow chain. Semantically
/// identical to [`majority_paper64`] (and therefore to
/// [`crate::bundle::majority_paper`]): with an even input count, the XOR
/// of the first two inputs joins the vote as the tie-break vector.
///
/// The accumulator allocates only when it grows — counter planes and the
/// tie-break buffer are retained across
/// [`majority_paper_into`](Self::majority_paper_into) /
/// [`clear`](Self::clear) cycles, so steady-state bundling performs no
/// heap allocation.
///
/// # Examples
///
/// ```
/// use hdc::hv64::{majority_paper64, BitslicedBundler, Hv64};
/// use hdc::BinaryHv;
///
/// let inputs: Vec<Hv64> = (0..4)
///     .map(|s| Hv64::from_binary(&BinaryHv::random(313, s)))
///     .collect();
/// let refs: Vec<&Hv64> = inputs.iter().collect();
///
/// let mut bundler = BitslicedBundler::new(313);
/// let mut out = Hv64::zeros(313);
/// for hv in &inputs {
///     bundler.add(hv);
/// }
/// bundler.majority_paper_into(&mut out);
/// assert_eq!(out, majority_paper64(&refs));
/// // The bundler has reset itself and can be reused immediately.
/// assert!(bundler.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct BitslicedBundler {
    /// `planes[p][w]`: bit `p` of the vote count of the 64 components in
    /// word `w`. Grows on demand; values up to the input count are always
    /// representable.
    planes: Vec<Vec<u64>>,
    /// First input, then (after the second add) XOR of the first two —
    /// the paper's tie-break vector, maintained incrementally.
    tie: Hv64,
    n_words32: usize,
    n: u32,
}

impl BitslicedBundler {
    /// An empty bundler for hypervectors of `n_words32` canonical words.
    ///
    /// # Panics
    ///
    /// Panics if `n_words32 == 0`.
    #[must_use]
    pub fn new(n_words32: usize) -> Self {
        Self {
            planes: Vec::new(),
            tie: Hv64::zeros(n_words32),
            n_words32,
            n: 0,
        }
    }

    /// Width of accepted hypervectors in canonical `u32` words.
    #[must_use]
    pub fn n_words32(&self) -> usize {
        self.n_words32
    }

    /// Number of hypervectors accumulated since the last reset.
    #[must_use]
    pub fn len(&self) -> u32 {
        self.n
    }

    /// Whether no hypervectors have been accumulated.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Resets the vote counters without releasing storage.
    pub fn clear(&mut self) {
        for plane in &mut self.planes {
            plane.fill(0);
        }
        self.n = 0;
    }

    /// Adds one hypervector to the vote.
    ///
    /// # Panics
    ///
    /// Panics if `hv` has a different width.
    pub fn add(&mut self, hv: &Hv64) {
        assert_eq!(
            hv.n_words32, self.n_words32,
            "bundler width mismatch: expected {} u32 words, got {}",
            self.n_words32, hv.n_words32
        );
        match self.n {
            0 => self.tie.copy_from(hv),
            1 => self.tie.xor_assign(hv),
            _ => {}
        }
        Self::add_words(&mut self.planes, &hv.words);
        self.n += 1;
    }

    /// Ripple-carry increment of the vertical counters by one input,
    /// growing the plane stack if the count needs another bit.
    fn add_words(planes: &mut Vec<Vec<u64>>, words: &[u64]) {
        for (wi, &word) in words.iter().enumerate() {
            let mut carry = word;
            let mut p = 0;
            while carry != 0 {
                if p == planes.len() {
                    planes.push(vec![0u64; words.len()]);
                }
                let plane = &mut planes[p][wi];
                let t = *plane & carry;
                *plane ^= carry;
                carry = t;
                p += 1;
            }
        }
    }

    /// Word-major, register-resident form of the same carry-save
    /// counter network: bundles `n` hypervectors accessed by index
    /// (`get(0..n)`) straight into `out`, with the paper's tie policy
    /// (even count ⇒ the XOR of the first two inputs joins the vote).
    ///
    /// Where [`add`](Self::add) streams inputs through heap-resident
    /// counter planes (one pass over the planes per input), this form
    /// makes a **single pass over the words**: for each output word the
    /// vote counters live in registers, the common vote sizes (an
    /// effective count of 3 or 5 — e.g. 4 channels + tie, or 5-sample
    /// windows of unigrams) collapse into fixed full-adder majority
    /// networks, and larger counts fall back to an in-register ripple
    /// counter. This is the hot-path entry point of the fast backend's
    /// spatial and temporal bundling; it performs no heap allocation
    /// for votes up to 1022 inputs and needs no persistent accumulator
    /// state (hence no `self`). Wider votes — beyond the 10-plane
    /// in-register counter — transparently route through a freshly
    /// allocated streaming accumulator (at that input scale the
    /// allocation is noise next to the counting work).
    ///
    /// Bit-identical to [`majority_paper64`] over the same inputs in
    /// the same order (a property test pins this).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or any input width differs from `out`'s.
    pub fn bundle_paper_into<'a, F>(n: usize, get: F, out: &mut Hv64)
    where
        F: Fn(usize) -> &'a Hv64,
    {
        assert!(n > 0, "majority of an empty set is undefined");
        let n_words32 = out.n_words32;
        for i in 0..n {
            assert_eq!(
                get(i).n_words32,
                n_words32,
                "bundler width mismatch: expected {} u32 words, got {}",
                n_words32,
                get(i).n_words32
            );
        }
        if n == 1 {
            out.copy_from(get(0));
            return;
        }
        let even = n % 2 == 0;
        let n_eff = n + usize::from(even);
        let n_words = out.words.len();
        let simd = Simd::active();
        match n_eff {
            3 if n == 2 => {
                // majority({x, y, x⊕y}) at threshold 2 reduces to x | y.
                simd.or_into(&get(0).words, &get(1).words, &mut out.words);
            }
            3 => {
                simd.maj3_into(&get(0).words, &get(1).words, &get(2).words, &mut out.words);
            }
            5 if n == 4 => {
                // Two full adders + a 3-input combine, the fifth input
                // being the in-register tie vector x0 ⊕ x1.
                simd.maj5_tie_into(
                    &get(0).words,
                    &get(1).words,
                    &get(2).words,
                    &get(3).words,
                    &mut out.words,
                );
            }
            5 => {
                simd.maj5_into(
                    &get(0).words,
                    &get(1).words,
                    &get(2).words,
                    &get(3).words,
                    &get(4).words,
                    &mut out.words,
                );
            }
            n_eff if n_eff >= (1 << crate::simd::RIPPLE_PLANES) => {
                // The vote count overflows the in-register counter:
                // fall back to the streaming heap-plane form, which has
                // no input limit.
                let mut bundler = Self::new(n_words32);
                for i in 0..n {
                    bundler.add(get(i));
                }
                bundler.majority_paper_into(out);
                return;
            }
            _ => {
                #[allow(clippy::cast_possible_truncation)]
                let threshold = (n_eff / 2 + 1) as u32;
                simd.ripple_majority_into(
                    n,
                    |i| &get(i).words[..],
                    even,
                    threshold,
                    &mut out.words,
                );
            }
        }
        // Every path keeps padding clean (inputs are clean and the
        // generic threshold rejects zero-count lanes), but mask
        // defensively, matching the rest of the module.
        let tail = (n_words32 * BITS_PER_WORD) % BITS_PER_WORD64;
        if tail != 0 {
            out.words[n_words - 1] &= (1u64 << tail) - 1;
        }
    }

    /// Writes the majority of the accumulated inputs into `out` with the
    /// paper's kernel tie policy (even count ⇒ the XOR of the first two
    /// inputs joins the vote), then resets the accumulator for reuse.
    ///
    /// Bit-identical to [`majority_paper64`] over the same inputs in the
    /// same order.
    ///
    /// # Panics
    ///
    /// Panics if the bundler is empty or `out` has a different width.
    pub fn majority_paper_into(&mut self, out: &mut Hv64) {
        assert!(self.n > 0, "majority of an empty bundle is undefined");
        assert_eq!(
            out.n_words32, self.n_words32,
            "bundler width mismatch: expected {} u32 words, got {}",
            self.n_words32, out.n_words32
        );
        if self.n == 1 {
            // Single input: identity (`tie` still holds the first input).
            out.copy_from(&self.tie);
            self.clear();
            return;
        }
        let n_eff = if self.n % 2 == 0 {
            Self::add_words(&mut self.planes, &self.tie.words);
            self.n + 1
        } else {
            self.n
        };
        let threshold = n_eff / 2 + 1;
        // Threshold bits above the stored planes read as zero-count
        // planes (all inputs may agree on zero there).
        let p_max = self
            .planes
            .len()
            .max((32 - threshold.leading_zeros()) as usize);
        let n_words = out.words.len();
        for wi in 0..n_words {
            // count >= threshold ⇔ (count - threshold) does not borrow,
            // evaluated for 64 components per step.
            let mut borrow = 0u64;
            for p in 0..p_max {
                let plane = self.planes.get(p).map_or(0, |pl| pl[wi]);
                let t = if threshold >> p & 1 == 1 { u64::MAX } else { 0 };
                borrow = (!plane & (t | borrow)) | (t & borrow);
            }
            out.words[wi] = !borrow;
        }
        let tail = (self.n_words32 * BITS_PER_WORD) % BITS_PER_WORD64;
        if tail != 0 {
            out.words[n_words - 1] &= (1u64 << tail) - 1;
        }
        self.clear();
    }
}

/// Counter-plane training accumulator — the packed twin of the scalar
/// associative-memory [`crate::bundle::Bundler`].
///
/// Where [`BitslicedBundler`] votes with the *paper's* tie policy (for
/// within-window encoding), `CounterBundler` keeps the **training**
/// semantics of the golden model: per-component vote counts that
/// survive across batches, thresholded with a caller-supplied (seeded)
/// tie vector. Counts are stored bit-sliced — plane `p` holds bit `p`
/// of the count for 64 components per word — so:
///
/// * [`add`](Self::add) is a carry-save sideways addition
///   ([`Simd::csa_step`](crate::simd::Simd::csa_step) rippled through
///   the planes): one packed hypervector joins 64 counters per
///   word-operation;
/// * [`merge`](Self::merge) adds another accumulator's planes in at
///   their significance — the reduction step that lets batch-training
///   workers accumulate disjoint chunks privately and combine them
///   exactly (counter addition is commutative, so the merged counts —
///   and therefore the trained prototype — are independent of how the
///   batch was split);
/// * [`majority_seeded_into`](Self::majority_seeded_into) thresholds
///   all counters at once
///   ([`Simd::counter_majority_into`](crate::simd::Simd::counter_majority_into)):
///   strictly-greater-than-half wins, exact half ties copy the tie
///   vector's bit — bit-identical to
///   [`Bundler::majority`](crate::bundle::Bundler::majority) with
///   [`TieBreak::Seeded`](crate::bundle::TieBreak) over the same seed.
///
/// Storage is retained across [`clear`](Self::clear) cycles; after
/// warm-up, accumulation performs no heap allocation.
///
/// # Examples
///
/// ```
/// use hdc::bundle::{Bundler, TieBreak};
/// use hdc::hv64::{CounterBundler, Hv64};
/// use hdc::BinaryHv;
///
/// let inputs: Vec<BinaryHv> = (0..4).map(|s| BinaryHv::random(313, s)).collect();
/// let tie = BinaryHv::random(313, 99);
///
/// let mut scalar = Bundler::new(313);
/// let mut packed = CounterBundler::new(313);
/// for hv in &inputs {
///     scalar.add(hv);
///     packed.add(&Hv64::from_binary(hv));
/// }
/// let mut out = Hv64::zeros(313);
/// packed.majority_seeded_into(&Hv64::from_binary(&tie), &mut out);
/// assert_eq!(out.to_binary(), scalar.majority(TieBreak::Vector(&tie)));
/// ```
#[derive(Debug, Clone)]
pub struct CounterBundler {
    /// `planes[p][w]`: bit `p` of the vote count of the 64 components in
    /// word `w`. Grows on demand.
    planes: Vec<Vec<u64>>,
    /// Carry scratch of the sideways addition (one word row).
    carry: Vec<u64>,
    n_words32: usize,
    n: u32,
}

impl CounterBundler {
    /// An empty accumulator for hypervectors of `n_words32` canonical
    /// words.
    ///
    /// # Panics
    ///
    /// Panics if `n_words32 == 0`.
    #[must_use]
    pub fn new(n_words32: usize) -> Self {
        assert!(n_words32 > 0, "bundler width must be at least one word");
        Self {
            planes: Vec::new(),
            carry: vec![0u64; n_words32.div_ceil(2)],
            n_words32,
            n: 0,
        }
    }

    /// Width of accepted hypervectors in canonical `u32` words.
    #[must_use]
    pub fn n_words32(&self) -> usize {
        self.n_words32
    }

    /// Number of hypervectors accumulated so far.
    #[must_use]
    pub fn len(&self) -> u32 {
        self.n
    }

    /// Whether no hypervectors have been accumulated.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Resets all counters to zero without releasing storage.
    pub fn clear(&mut self) {
        for plane in &mut self.planes {
            plane.fill(0);
        }
        self.n = 0;
    }

    /// Ripples `carry` (pre-loaded with the addend) into the planes from
    /// significance `from` upward, growing the stack as needed.
    fn ripple_from(&mut self, from: usize) {
        let simd = Simd::active();
        let mut p = from;
        let mut pending = true;
        while pending {
            if p == self.planes.len() {
                self.planes.push(vec![0u64; self.carry.len()]);
            }
            pending = simd.csa_step(&mut self.planes[p], &mut self.carry);
            p += 1;
        }
    }

    /// Adds one hypervector to every counter it has a one-bit for.
    ///
    /// # Panics
    ///
    /// Panics if `hv` has a different width.
    pub fn add(&mut self, hv: &Hv64) {
        assert_eq!(
            hv.n_words32, self.n_words32,
            "bundler width mismatch: expected {} u32 words, got {}",
            self.n_words32, hv.n_words32
        );
        self.carry.copy_from_slice(&hv.words);
        self.ripple_from(0);
        self.n = self.n.checked_add(1).expect("counter overflow");
    }

    /// Adds another accumulator's counts into this one (sideways
    /// addition plane by plane at its significance). The result is the
    /// accumulator that would have seen both input streams, in any
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if the accumulators have different widths.
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(
            other.n_words32, self.n_words32,
            "bundler width mismatch: expected {} u32 words, got {}",
            self.n_words32, other.n_words32
        );
        for (p, plane) in other.planes.iter().enumerate() {
            self.carry.copy_from_slice(plane);
            self.ripple_from(p);
        }
        self.n = self.n.checked_add(other.n).expect("counter overflow");
    }

    /// Thresholds the counters into `out`: a component becomes one iff
    /// strictly more than half of the accumulated inputs had it set, or
    /// exactly half did (even counts only) and `tie`'s bit is one.
    ///
    /// Bit-identical to
    /// [`Bundler::majority`](crate::bundle::Bundler::majority) with
    /// [`TieBreak::Vector`](crate::bundle::TieBreak)`(tie)` (and
    /// therefore to `TieBreak::Seeded` when `tie` is the seeded vector
    /// materialized from the same seed). Unlike the paper-policy
    /// bundlers, this does **not** reset the accumulator: training
    /// counters persist so the model "can be continuously updated for
    /// on-line learning".
    ///
    /// # Panics
    ///
    /// Panics if the accumulator is empty or `tie` / `out` widths
    /// differ.
    pub fn majority_seeded_into(&self, tie: &Hv64, out: &mut Hv64) {
        assert!(self.n > 0, "majority of an empty bundle is undefined");
        assert_eq!(
            tie.n_words32, self.n_words32,
            "tie-break vector width mismatch: expected {} u32 words, got {}",
            self.n_words32, tie.n_words32
        );
        assert_eq!(
            out.n_words32, self.n_words32,
            "bundler width mismatch: expected {} u32 words, got {}",
            self.n_words32, out.n_words32
        );
        Simd::active().counter_majority_into(
            |p| self.planes[p].as_slice(),
            self.planes.len(),
            self.n,
            &tie.words,
            &mut out.words,
        );
        // Inputs and tie have clean padding, so padding counts are zero
        // and never reach the threshold; mask defensively anyway,
        // matching the rest of the module.
        let n_words = out.words.len();
        let tail = (self.n_words32 * BITS_PER_WORD) % BITS_PER_WORD64;
        if tail != 0 {
            out.words[n_words - 1] &= (1u64 << tail) - 1;
        }
    }
}

/// Exact nearest-prototype search with early exit, writing per-class
/// distances into a caller-owned buffer and returning the winning class.
///
/// The scan tracks the running best distance and abandons a prototype's
/// word loop as soon as its partial Hamming distance exceeds the current
/// minimum — an abandoned prototype can never win, so the **class is
/// always identical to a full scan's** (including first-minimum tie
/// order, because a pruned prototype's true distance is strictly greater
/// than the final minimum).
///
/// The `distances` entries trade exactness for the skipped work: entry
/// `k` is the exact Hamming distance whenever prototype `k` was fully
/// scanned — always true for the winner and for every prototype whose
/// distance ties or beats the running minimum — and otherwise the
/// partial distance at the abandonment point, which is simultaneously a
/// lower bound on the true distance and strictly greater than the
/// winning distance. Ordering queries ("is `k` the argmin", margins
/// above the winner) therefore resolve the same way as on exact
/// distances.
///
/// Abandonment happens at fixed
/// [`SCAN_BLOCK_WORDS64`](crate::simd::SCAN_BLOCK_WORDS64)-word
/// (512-bit) block boundaries, identically on every
/// [`Simd`](crate::simd::Simd) level, so the reported partial distances
/// never depend on the CPU the scan ran on (and equal
/// [`crate::AssociativeMemory::classify_pruned`]'s, which abandons at
/// the same bit positions on the `u32`-packed representation).
///
/// # Panics
///
/// Panics if `prototypes` is empty or any width differs from the
/// query's.
///
/// # Examples
///
/// ```
/// use hdc::hv64::{scan_pruned_into, Hv64};
/// use hdc::BinaryHv;
///
/// let prototypes: Vec<Hv64> = (0..5)
///     .map(|s| Hv64::from_binary(&BinaryHv::random(313, s)))
///     .collect();
/// let query = prototypes[3].clone();
/// let mut distances = Vec::new();
/// let class = scan_pruned_into(&prototypes, &query, &mut distances);
/// assert_eq!(class, 3);
/// assert_eq!(distances[3], 0);
/// ```
pub fn scan_pruned_into(prototypes: &[Hv64], query: &Hv64, distances: &mut Vec<u32>) -> usize {
    assert!(
        !prototypes.is_empty(),
        "associative-memory scan needs at least one prototype"
    );
    distances.clear();
    let simd = Simd::active();
    let mut best = u32::MAX;
    let mut best_class = 0usize;
    for (class, p) in prototypes.iter().enumerate() {
        assert_eq!(
            p.n_words32, query.n_words32,
            "prototype width mismatch: {} vs {} u32 words",
            p.n_words32, query.n_words32
        );
        let d = simd.hamming_bounded(&p.words, &query.words, best);
        if d < best {
            best = d;
            best_class = class;
        }
        distances.push(d);
    }
    best_class
}

/// **Approximate** nearest-prototype search with threshold early
/// termination: accepts the first prototype whose distance is provably
/// `<= accept`, skipping the remaining classes entirely.
///
/// This is the accuracy-for-speed rung of the scan ladder. Prototypes
/// are visited in order; each is scanned with the two-sided
/// [`Simd::hamming_threshold`] kernel, which abandons a prototype that
/// can no longer win (partial distance above the running best, exactly
/// like [`scan_pruned_into`]) *and* stops early once the partial
/// distance plus the maximum contribution of the unscanned words is
/// within `accept` — at which point the prototype is declared the
/// winner without scanning the rest of the associative memory.
///
/// The loop maintains `best > accept` as its invariant: it returns the
/// moment a scanned prototype lands at or below `accept`, so an
/// abandoned prototype (partial `> best > accept`) can never be
/// mistaken for an accepted one, and an accepted prototype's true
/// distance (`<= accept < best`) always beats every class scanned
/// before it. When *no* prototype meets the threshold the scan
/// degenerates to the exact pruned scan and returns the true argmin —
/// `accept = 0` makes this function behave identically to
/// [`scan_pruned_into`] on distinct prototypes.
///
/// `distances` is filled for every class: visited classes record their
/// (possibly partial, see [`scan_pruned_into`]) distances — the
/// accepted class's entry is the partial sum at the acceptance
/// boundary, a lower bound on its true distance that is still `<=
/// accept` — and classes skipped by an acceptance record the
/// [`u32::MAX`] sentinel, making skipped work visible to telemetry.
///
/// Returns `(class, accepted)` where `accepted` says whether the scan
/// exited through the threshold (false means the result is exact).
///
/// # Panics
///
/// Panics if `prototypes` is empty or any width differs from the
/// query's.
///
/// # Examples
///
/// ```
/// use hdc::hv64::{scan_threshold_into, Hv64};
/// use hdc::BinaryHv;
///
/// let prototypes: Vec<Hv64> = (0..5)
///     .map(|s| Hv64::from_binary(&BinaryHv::random(313, s)))
///     .collect();
/// let query = prototypes[2].clone();
/// let mut distances = Vec::new();
/// // Random 313-u32-word vectors sit ~5000 bits apart; a 1000-bit
/// // acceptance radius catches only the exact-match prototype.
/// let (class, accepted) = scan_threshold_into(&prototypes, &query, 1000, &mut distances);
/// assert_eq!((class, accepted), (2, true));
/// assert!(distances[2] <= 1000);
/// assert_eq!(distances[3], u32::MAX); // skipped, never scanned
/// ```
pub fn scan_threshold_into(
    prototypes: &[Hv64],
    query: &Hv64,
    accept: u32,
    distances: &mut Vec<u32>,
) -> (usize, bool) {
    assert!(
        !prototypes.is_empty(),
        "associative-memory scan needs at least one prototype"
    );
    distances.clear();
    let simd = Simd::active();
    let mut best = u32::MAX;
    let mut best_class = 0usize;
    for (class, p) in prototypes.iter().enumerate() {
        assert_eq!(
            p.n_words32, query.n_words32,
            "prototype width mismatch: {} vs {} u32 words",
            p.n_words32, query.n_words32
        );
        // Invariant: `best > accept` here (the loop exits below the
        // moment that stops holding), so `prune = best` keeps the two
        // kernel exits disjoint.
        let d = simd.hamming_threshold(&p.words, &query.words, best, accept);
        distances.push(d);
        if d <= accept {
            distances.resize(prototypes.len(), u32::MAX);
            return (class, true);
        }
        if d < best {
            best = d;
            best_class = class;
        }
    }
    (best_class, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::majority_paper;
    use crate::encoder::ngram;
    use crate::rng::Xoshiro256PlusPlus;

    fn pair(n_words32: usize, seed: u64) -> (BinaryHv, Hv64) {
        let hv = BinaryHv::random(n_words32, seed);
        let packed = Hv64::from_binary(&hv);
        (hv, packed)
    }

    #[test]
    fn roundtrip_is_lossless_for_even_and_odd_widths() {
        for n_words32 in [1usize, 2, 3, 7, 16, 313] {
            let (hv, packed) = pair(n_words32, n_words32 as u64);
            assert_eq!(packed.to_binary(), hv, "{n_words32} words");
            assert_eq!(packed.dim(), hv.dim());
            assert_eq!(packed.n_words(), n_words32.div_ceil(2));
            assert_eq!(packed.count_ones(), hv.count_ones());
        }
    }

    #[test]
    fn padding_bits_stay_zero() {
        let (_, packed) = pair(313, 9);
        // 313 u32 words → 157 u64 words; top 32 bits of the last are pad.
        assert_eq!(packed.words()[156] >> 32, 0);
        let rotated = packed.rotate(1);
        assert_eq!(rotated.words()[156] >> 32, 0);
    }

    #[test]
    fn bind_matches_u32_model() {
        for n_words32 in [1usize, 3, 8, 313] {
            let (a, a64) = pair(n_words32, 1);
            let (b, b64) = pair(n_words32, 2);
            assert_eq!(a64.bind(&b64).to_binary(), a.bind(&b), "{n_words32} words");
        }
    }

    #[test]
    fn hamming_matches_u32_model() {
        for n_words32 in [1usize, 3, 8, 313] {
            let (a, a64) = pair(n_words32, 3);
            let (b, b64) = pair(n_words32, 4);
            assert_eq!(a64.hamming(&b64), a.hamming(&b), "{n_words32} words");
        }
    }

    #[test]
    fn rotate_matches_u32_model_across_shifts() {
        for n_words32 in [1usize, 2, 3, 5, 313] {
            let (a, a64) = pair(n_words32, 5);
            let dim = a.dim();
            for k in [0, 1, 31, 32, 33, 63, 64, 65, 127, dim - 1, dim, dim + 7] {
                assert_eq!(
                    a64.rotate(k).to_binary(),
                    a.rotate(k),
                    "{n_words32} words, k = {k}"
                );
            }
        }
    }

    #[test]
    fn rotate_randomized_against_u32_model() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(0xFA57);
        for case in 0..64 {
            let n_words32 = 1 + (rng.next_below(20) as usize);
            let (a, a64) = pair(n_words32, rng.next_u64());
            let k = rng.next_below(2 * a.dim() as u32) as usize;
            assert_eq!(a64.rotate(k).to_binary(), a.rotate(k), "case {case}");
        }
    }

    #[test]
    fn ngram_matches_u32_model() {
        for (n_words32, n) in [(3usize, 2usize), (5, 3), (313, 4)] {
            let hvs: Vec<BinaryHv> = (0..n)
                .map(|s| BinaryHv::random(n_words32, 40 + s as u64))
                .collect();
            let packed: Vec<Hv64> = hvs.iter().map(Hv64::from_binary).collect();
            assert_eq!(
                ngram64(&packed).to_binary(),
                ngram(&hvs),
                "{n_words32} words, N = {n}"
            );
        }
    }

    #[test]
    fn majority_matches_u32_model_odd_and_even() {
        for n in 1usize..10 {
            for n_words32 in [1usize, 3, 11, 313] {
                let hvs: Vec<BinaryHv> = (0..n)
                    .map(|s| BinaryHv::random(n_words32, 900 + s as u64))
                    .collect();
                let packed: Vec<Hv64> = hvs.iter().map(Hv64::from_binary).collect();
                let refs: Vec<&Hv64> = packed.iter().collect();
                assert_eq!(
                    majority_paper64(&refs).to_binary(),
                    majority_paper(&hvs),
                    "{n_words32} words, n = {n}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn bind_width_mismatch_panics() {
        let (_, a) = pair(2, 1);
        let (_, b) = pair(3, 2);
        let _ = a.bind(&b);
    }

    #[test]
    #[should_panic(expected = "odd input count")]
    fn bitsliced_majority_rejects_even_counts() {
        let (_, a) = pair(1, 1);
        let (_, b) = pair(1, 2);
        let _ = majority_odd_bitsliced64(&[&a, &b]);
    }

    #[test]
    fn in_place_ops_match_allocating_counterparts() {
        for n_words32 in [1usize, 2, 3, 8, 313] {
            let (_, a) = pair(n_words32, 21);
            let (_, b) = pair(n_words32, 22);
            // xor_assign == bind
            let mut x = a.clone();
            x.xor_assign(&b);
            assert_eq!(x, a.bind(&b), "{n_words32} words: xor_assign");
            // copy_from == clone
            let mut c = Hv64::zeros(n_words32);
            c.copy_from(&a);
            assert_eq!(c, a, "{n_words32} words: copy_from");
            let dim = a.dim();
            for k in [0usize, 1, 31, 32, 63, 64, 65, 100, dim - 1, dim, dim + 3] {
                // rotate_into == rotate, including into a dirty buffer
                let mut out = b.clone();
                a.rotate_into(k, &mut out);
                assert_eq!(out, a.rotate(k), "{n_words32} words, k = {k}: rotate_into");
                // xor_rotated == bind(rotate)
                let mut fused = a.clone();
                fused.xor_rotated(&b, k);
                assert_eq!(
                    fused,
                    a.bind(&b.rotate(k)),
                    "{n_words32} words, k = {k}: xor_rotated"
                );
            }
        }
    }

    #[test]
    fn zeros_has_clean_padding_and_width() {
        let z = Hv64::zeros(313);
        assert_eq!(z.n_words32(), 313);
        assert_eq!(z.count_ones(), 0);
        assert_eq!(z.to_binary(), BinaryHv::zeros(313));
    }

    #[test]
    fn bundler_matches_majority_paper64_for_all_counts() {
        for n in 1usize..12 {
            for n_words32 in [1usize, 3, 11, 313] {
                let hvs: Vec<Hv64> = (0..n)
                    .map(|s| Hv64::from_binary(&BinaryHv::random(n_words32, 700 + s as u64)))
                    .collect();
                let refs: Vec<&Hv64> = hvs.iter().collect();
                let mut bundler = BitslicedBundler::new(n_words32);
                let mut out = Hv64::zeros(n_words32);
                for hv in &hvs {
                    bundler.add(hv);
                }
                bundler.majority_paper_into(&mut out);
                assert_eq!(out, majority_paper64(&refs), "{n_words32} words, n = {n}");
                assert!(bundler.is_empty(), "bundler must self-reset");
            }
        }
    }

    #[test]
    fn bundle_paper_into_matches_majority_paper64_for_all_counts() {
        // n = 1..14 crosses every specialization boundary: identity,
        // the OR shortcut (n = 2), maj-3, maj-5 with and without the
        // tie input, and the generic in-register ripple counter.
        for n in 1usize..14 {
            for n_words32 in [1usize, 3, 11, 313] {
                let hvs: Vec<Hv64> = (0..n)
                    .map(|s| Hv64::from_binary(&BinaryHv::random(n_words32, 550 + s as u64)))
                    .collect();
                let refs: Vec<&Hv64> = hvs.iter().collect();
                let mut out = Hv64::from_binary(&BinaryHv::random(n_words32, 1)); // dirty
                BitslicedBundler::bundle_paper_into(n, |i| &hvs[i], &mut out);
                assert_eq!(out, majority_paper64(&refs), "{n_words32} words, n = {n}");
            }
        }
    }

    #[test]
    fn bundle_paper_into_handles_votes_wider_than_the_register_counter() {
        // > 1022 inputs overflow the 10-plane in-register counter and
        // must route through the streaming fallback — no panic, same
        // bits (a 1023-sample window at ngram 1 is a legal workload).
        for n in [1023usize, 1030, 1041] {
            let hvs: Vec<Hv64> = (0..n)
                .map(|s| Hv64::from_binary(&BinaryHv::random(2, s as u64)))
                .collect();
            let refs: Vec<&Hv64> = hvs.iter().collect();
            let mut out = Hv64::zeros(2);
            BitslicedBundler::bundle_paper_into(n, |i| &hvs[i], &mut out);
            assert_eq!(out, majority_paper64(&refs), "n = {n}");
        }
    }

    #[test]
    fn bundler_reuse_is_stateless_across_rounds() {
        // Interleave bundles of different sizes through one accumulator;
        // every round must match a fresh computation.
        let mut bundler = BitslicedBundler::new(7);
        let mut out = Hv64::zeros(7);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(0xB0D1);
        for round in 0..16 {
            let n = 1 + (rng.next_below(9) as usize);
            let hvs: Vec<Hv64> = (0..n)
                .map(|_| Hv64::from_binary(&BinaryHv::random(7, rng.next_u64())))
                .collect();
            let refs: Vec<&Hv64> = hvs.iter().collect();
            for hv in &hvs {
                bundler.add(hv);
            }
            bundler.majority_paper_into(&mut out);
            assert_eq!(out, majority_paper64(&refs), "round {round}, n = {n}");
        }
    }

    #[test]
    fn bundler_of_all_zero_inputs_is_zero() {
        // No plane is ever materialized, yet the threshold must still
        // reject every component.
        let z = Hv64::zeros(3);
        let mut bundler = BitslicedBundler::new(3);
        let mut out = Hv64::from_binary(&BinaryHv::random(3, 5));
        for _ in 0..3 {
            bundler.add(&z);
        }
        bundler.majority_paper_into(&mut out);
        assert_eq!(out.count_ones(), 0);
    }

    #[test]
    #[should_panic(expected = "empty bundle")]
    fn bundler_empty_majority_panics() {
        let mut bundler = BitslicedBundler::new(2);
        let mut out = Hv64::zeros(2);
        bundler.majority_paper_into(&mut out);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn bundler_add_width_mismatch_panics() {
        let mut bundler = BitslicedBundler::new(2);
        let (_, a) = pair(3, 1);
        bundler.add(&a);
    }

    #[test]
    fn counter_bundler_matches_scalar_training_bundler() {
        use crate::bundle::{Bundler, TieBreak};
        for n in 1usize..=12 {
            for n_words32 in [1usize, 3, 11, 313] {
                let hvs: Vec<BinaryHv> = (0..n)
                    .map(|s| BinaryHv::random(n_words32, 2_000 + s as u64))
                    .collect();
                let tie = BinaryHv::random(n_words32, 4_242);
                let mut scalar = Bundler::new(n_words32);
                let mut packed = CounterBundler::new(n_words32);
                for hv in &hvs {
                    scalar.add(hv);
                    packed.add(&Hv64::from_binary(hv));
                }
                assert_eq!(packed.len(), n as u32);
                let mut out = Hv64::from_binary(&BinaryHv::random(n_words32, 7)); // dirty
                packed.majority_seeded_into(&Hv64::from_binary(&tie), &mut out);
                assert_eq!(
                    out.to_binary(),
                    scalar.majority(TieBreak::Vector(&tie)),
                    "{n_words32} words, n = {n}"
                );
                // Counters persist: thresholding again gives the same
                // answer, and more adds keep counting.
                let mut again = Hv64::zeros(n_words32);
                packed.majority_seeded_into(&Hv64::from_binary(&tie), &mut again);
                assert_eq!(again, out, "{n_words32} words, n = {n}: persistent");
            }
        }
    }

    /// Exact ties are the adversarial case: two complementary inputs tie
    /// every component, so the output must equal the tie vector itself.
    #[test]
    fn counter_bundler_ties_copy_the_tie_vector() {
        let a = BinaryHv::random(5, 1);
        let mut b = a.clone();
        for i in 0..b.dim() {
            b.set_bit(i, !b.bit(i));
        }
        let tie = BinaryHv::random(5, 9);
        let mut packed = CounterBundler::new(5);
        packed.add(&Hv64::from_binary(&a));
        packed.add(&Hv64::from_binary(&b));
        let mut out = Hv64::zeros(5);
        packed.majority_seeded_into(&Hv64::from_binary(&tie), &mut out);
        assert_eq!(out.to_binary(), tie);
    }

    /// Merging split accumulators equals one accumulator over the whole
    /// stream, regardless of split point or merge order.
    #[test]
    fn counter_bundler_merge_is_exact_and_order_free() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(0xC0DE);
        for case in 0..12 {
            let n_words32 = 1 + rng.next_below(20) as usize;
            let n = 1 + rng.next_below(14) as usize;
            let hvs: Vec<Hv64> = (0..n)
                .map(|_| Hv64::from_binary(&BinaryHv::random(n_words32, rng.next_u64())))
                .collect();
            let tie = Hv64::from_binary(&BinaryHv::random(n_words32, rng.next_u64()));
            let mut whole = CounterBundler::new(n_words32);
            for hv in &hvs {
                whole.add(hv);
            }
            let split = (rng.next_below(n as u32 + 1)) as usize;
            let mut left = CounterBundler::new(n_words32);
            let mut right = CounterBundler::new(n_words32);
            for hv in &hvs[..split] {
                left.add(hv);
            }
            for hv in &hvs[split..] {
                right.add(hv);
            }
            let mut expected = Hv64::zeros(n_words32);
            whole.majority_seeded_into(&tie, &mut expected);
            // left ← right …
            let mut merged = left.clone();
            merged.merge(&right);
            assert_eq!(merged.len(), n as u32);
            let mut out = Hv64::zeros(n_words32);
            merged.majority_seeded_into(&tie, &mut out);
            assert_eq!(out, expected, "case {case}: split {split} of {n}");
            // … and right ← left agree.
            let mut flipped = right.clone();
            flipped.merge(&left);
            flipped.majority_seeded_into(&tie, &mut out);
            assert_eq!(out, expected, "case {case}: merge order");
        }
    }

    #[test]
    fn counter_bundler_clear_keeps_storage_and_resets_counts() {
        let mut b = CounterBundler::new(3);
        for s in 0..5 {
            b.add(&Hv64::from_binary(&BinaryHv::random(3, s)));
        }
        b.clear();
        assert!(b.is_empty());
        let probe = Hv64::from_binary(&BinaryHv::random(3, 77));
        b.add(&probe);
        let mut out = Hv64::zeros(3);
        b.majority_seeded_into(&Hv64::zeros(3), &mut out);
        assert_eq!(out, probe, "single input after clear is the identity");
    }

    #[test]
    #[should_panic(expected = "empty bundle")]
    fn counter_bundler_empty_majority_panics() {
        let b = CounterBundler::new(2);
        let mut out = Hv64::zeros(2);
        b.majority_seeded_into(&Hv64::zeros(2), &mut out);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn counter_bundler_add_width_mismatch_panics() {
        let mut b = CounterBundler::new(2);
        b.add(&Hv64::zeros(3));
    }

    #[test]
    fn pruned_scan_class_matches_full_scan() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(0x5CAD);
        for case in 0..64 {
            let n_words32 = 1 + (rng.next_below(20) as usize);
            let classes = 1 + (rng.next_below(8) as usize);
            let prototypes: Vec<Hv64> = (0..classes)
                .map(|_| Hv64::from_binary(&BinaryHv::random(n_words32, rng.next_u64())))
                .collect();
            let query = Hv64::from_binary(&BinaryHv::random(n_words32, rng.next_u64()));
            let full: Vec<u32> = prototypes.iter().map(|p| p.hamming(&query)).collect();
            let expected = full
                .iter()
                .enumerate()
                .min_by_key(|&(_, &d)| d)
                .map(|(i, _)| i)
                .unwrap();
            let mut distances = Vec::new();
            let class = scan_pruned_into(&prototypes, &query, &mut distances);
            assert_eq!(class, expected, "case {case}");
            assert_eq!(distances[class], full[class], "case {case}: winner exact");
            for (k, (&pruned, &exact)) in distances.iter().zip(&full).enumerate() {
                assert!(pruned <= exact, "case {case}, class {k}: lower bound");
                if k != class {
                    assert!(
                        pruned >= full[class],
                        "case {case}, class {k}: non-winner cannot undercut the minimum"
                    );
                }
            }
        }
    }

    #[test]
    fn pruned_scan_breaks_exact_ties_like_full_scan() {
        // All prototypes identical: every distance ties, and the first
        // minimum must win, exactly as the kernel's strict-less search.
        let p = Hv64::from_binary(&BinaryHv::random(5, 9));
        let prototypes = vec![p.clone(), p.clone(), p.clone()];
        let query = Hv64::from_binary(&BinaryHv::random(5, 10));
        let mut distances = Vec::new();
        assert_eq!(scan_pruned_into(&prototypes, &query, &mut distances), 0);
        let exact = p.hamming(&query);
        assert_eq!(distances[0], exact, "first prototype is fully scanned");
    }

    /// With `accept = 0` (and distinct prototypes) the threshold scan
    /// never accepts early, so it must agree with the exact pruned scan
    /// on class *and* distances across random shapes.
    #[test]
    fn threshold_scan_with_zero_accept_matches_pruned_scan() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(0x7A11);
        for case in 0..64 {
            let n_words32 = 1 + (rng.next_below(20) as usize);
            let classes = 1 + (rng.next_below(8) as usize);
            let prototypes: Vec<Hv64> = (0..classes)
                .map(|_| Hv64::from_binary(&BinaryHv::random(n_words32, rng.next_u64())))
                .collect();
            let query = Hv64::from_binary(&BinaryHv::random(n_words32, rng.next_u64()));
            let mut pruned = Vec::new();
            let expected = scan_pruned_into(&prototypes, &query, &mut pruned);
            let mut thresholded = Vec::new();
            let (class, accepted) = scan_threshold_into(&prototypes, &query, 0, &mut thresholded);
            if accepted {
                // Only an exact duplicate of the query can be accepted
                // at radius zero.
                assert_eq!(thresholded[class], 0, "case {case}");
                assert_eq!(prototypes[class], query, "case {case}");
                assert_eq!(class, expected, "case {case}");
            } else {
                assert_eq!(class, expected, "case {case}");
                assert_eq!(thresholded, pruned, "case {case}");
            }
        }
    }

    /// An acceptance exit always returns a class whose *true* distance
    /// is within the radius, skipped classes carry the sentinel, and
    /// the accepted class is the first such class in scan order.
    #[test]
    fn threshold_scan_accepts_first_class_within_radius() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(0xACC3);
        for case in 0..64 {
            let n_words32 = 1 + (rng.next_below(20) as usize);
            let classes = 2 + (rng.next_below(7) as usize);
            let mut prototypes: Vec<Hv64> = (0..classes)
                .map(|_| Hv64::from_binary(&BinaryHv::random(n_words32, rng.next_u64())))
                .collect();
            // Plant a near-duplicate of the query mid-scan.
            let query = Hv64::from_binary(&BinaryHv::random(n_words32, rng.next_u64()));
            let planted = rng.next_below(classes as u32) as usize;
            prototypes[planted] = query.clone();
            let accept = 4 + rng.next_below(n_words32 as u32 * 8);
            let mut distances = Vec::new();
            let (class, accepted) =
                scan_threshold_into(&prototypes, &query, accept, &mut distances);
            assert!(accepted, "case {case}: planted duplicate must be accepted");
            assert!(
                prototypes[class].hamming(&query) <= accept,
                "case {case}: accepted class within radius"
            );
            assert!(distances[class] <= accept, "case {case}");
            // First-acceptable-in-order: nobody before `class` is
            // within the radius.
            for (k, earlier) in prototypes.iter().enumerate().take(class) {
                assert!(
                    earlier.hamming(&query) > accept,
                    "case {case}, class {k}: earlier class inside radius was skipped"
                );
            }
            for (k, &d) in distances.iter().enumerate().skip(class + 1) {
                assert_eq!(d, u32::MAX, "case {case}, class {k}: sentinel");
            }
            assert_eq!(distances.len(), classes, "case {case}");
        }
    }

    /// Both SIMD levels produce identical threshold-scan results
    /// (classes, acceptance flags, and every partial distance).
    #[test]
    fn threshold_scan_is_level_independent() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(0x1E7E);
        let before = Simd::active();
        for case in 0..32 {
            let n_words32 = 1 + (rng.next_below(20) as usize);
            let classes = 1 + (rng.next_below(8) as usize);
            let mut prototypes: Vec<Hv64> = (0..classes)
                .map(|_| Hv64::from_binary(&BinaryHv::random(n_words32, rng.next_u64())))
                .collect();
            let query = Hv64::from_binary(&BinaryHv::random(n_words32, rng.next_u64()));
            if case % 2 == 0 {
                let planted = rng.next_below(classes as u32) as usize;
                prototypes[planted] = query.clone();
            }
            let accept = rng.next_below(n_words32 as u32 * 16);
            let mut results = Vec::new();
            let detected = Simd::detect();
            let mut levels = vec![Simd::Portable];
            if detected != Simd::Portable {
                levels.push(detected);
            }
            for level in &levels {
                Simd::set_active(*level);
                let mut distances = Vec::new();
                let out = scan_threshold_into(&prototypes, &query, accept, &mut distances);
                results.push((out, distances));
            }
            Simd::set_active(before);
            for pair in results.windows(2) {
                assert_eq!(pair[0], pair[1], "case {case}");
            }
        }
    }
}
