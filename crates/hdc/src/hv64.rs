//! `u64`-word packed hypervectors for throughput-oriented host execution.
//!
//! [`Hv64`] carries the exact bit pattern of a [`BinaryHv`] repacked two
//! `u32` words per `u64` word (component `i` is bit `i % 64` of word
//! `i / 64`), so every MAP operation runs over half as many words and
//! Hamming distances use 64-bit `count_ones`. Conversion to and from
//! [`BinaryHv`] is lossless in both directions, and every operation here
//! is bit-identical to its `u32` counterpart — the [`FastBackend`]
//! property tests pin this equivalence.
//!
//! The canonical width stays the `u32` word count of the golden model
//! (313 words ≙ "10,000-D"); when it is odd, the top `u64` word holds
//! only 32 valid components and its padding bits are kept at zero by
//! every constructor and operation.
//!
//! [`FastBackend`]: https://docs.rs/pulp-hd-core

use core::fmt;

use crate::hv::{BinaryHv, BITS_PER_WORD};

/// Number of binary components packed into one `u64` word.
pub const BITS_PER_WORD64: usize = 64;

/// A binary hypervector packed into `u64` words.
///
/// # Examples
///
/// ```
/// use hdc::{BinaryHv, Hv64};
///
/// let a = BinaryHv::random(313, 1);
/// let b = BinaryHv::random(313, 2);
/// let a64 = Hv64::from_binary(&a);
/// let b64 = Hv64::from_binary(&b);
/// // Same algebra, half the words: distances and bindings agree exactly.
/// assert_eq!(a64.hamming(&b64), a.hamming(&b));
/// assert_eq!(a64.bind(&b64).to_binary(), a.bind(&b));
/// assert_eq!(a64.to_binary(), a);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Hv64 {
    words: Box<[u64]>,
    /// Width in canonical `u32` words (`dim = n_words32 * 32`).
    n_words32: usize,
}

impl Hv64 {
    /// Repacks a [`BinaryHv`] into `u64` words (lossless).
    #[must_use]
    pub fn from_binary(hv: &BinaryHv) -> Self {
        let w32 = hv.words();
        let mut words = Vec::with_capacity(w32.len().div_ceil(2));
        for pair in w32.chunks(2) {
            let lo = u64::from(pair[0]);
            let hi = pair.get(1).map_or(0, |&h| u64::from(h) << 32);
            words.push(lo | hi);
        }
        Self {
            words: words.into_boxed_slice(),
            n_words32: w32.len(),
        }
    }

    /// Unpacks back into the canonical `u32`-word representation
    /// (lossless; `to_binary(from_binary(x)) == x`).
    #[must_use]
    pub fn to_binary(&self) -> BinaryHv {
        let mut w32 = Vec::with_capacity(self.n_words32);
        for (i, &w) in self.words.iter().enumerate() {
            w32.push(w as u32);
            if 2 * i + 1 < self.n_words32 {
                w32.push((w >> 32) as u32);
            }
        }
        BinaryHv::from_words(w32)
    }

    /// Dimensionality (number of binary components, a multiple of 32).
    #[must_use]
    pub fn dim(&self) -> usize {
        self.n_words32 * BITS_PER_WORD
    }

    /// Number of packed `u64` words.
    #[must_use]
    pub fn n_words(&self) -> usize {
        self.words.len()
    }

    /// Width in canonical `u32` words (matches the golden model).
    #[must_use]
    pub fn n_words32(&self) -> usize {
        self.n_words32
    }

    /// The packed words, little-endian in component order.
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Number of components set to one.
    #[must_use]
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Componentwise XOR — the HD *multiplication* (binding) operation.
    ///
    /// # Panics
    ///
    /// Panics if the operands have different widths.
    #[must_use]
    pub fn bind(&self, other: &Self) -> Self {
        let mut out = self.clone();
        out.bind_assign(other);
        out
    }

    /// In-place componentwise XOR.
    ///
    /// # Panics
    ///
    /// Panics if the operands have different widths.
    pub fn bind_assign(&mut self, other: &Self) {
        assert_eq!(
            self.n_words32, other.n_words32,
            "hypervector width mismatch: {} vs {} u32 words",
            self.n_words32, other.n_words32
        );
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a ^= *b;
        }
    }

    /// Hamming distance via 64-bit popcount.
    ///
    /// # Panics
    ///
    /// Panics if the operands have different widths.
    #[must_use]
    pub fn hamming(&self, other: &Self) -> u32 {
        assert_eq!(
            self.n_words32, other.n_words32,
            "hypervector width mismatch: {} vs {} u32 words",
            self.n_words32, other.n_words32
        );
        self.words
            .iter()
            .zip(other.words.iter())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum()
    }

    /// ρᵏ: rotates all components left by `k` positions modulo the
    /// dimension, bit-identical to [`BinaryHv::rotate`].
    #[must_use]
    pub fn rotate(&self, k: usize) -> Self {
        let dim = self.dim();
        let k = k % dim;
        if k == 0 {
            return self.clone();
        }
        // rotl_dim(x, k) = ((x << k) | (x >> (dim - k))) mod 2^dim, as
        // big-integer arithmetic over the word array.
        let n = self.words.len();
        let mut out = vec![0u64; n];
        shl_into(&self.words, k, &mut out);
        let mut wrap = vec![0u64; n];
        shr_into(&self.words, dim - k, &mut wrap);
        for (o, w) in out.iter_mut().zip(&wrap) {
            *o |= w;
        }
        let tail = dim % BITS_PER_WORD64;
        if tail != 0 {
            out[n - 1] &= (1u64 << tail) - 1;
        }
        Self {
            words: out.into_boxed_slice(),
            n_words32: self.n_words32,
        }
    }
}

/// `out = x << s` over little-endian `u64` words (bits shifted past the
/// top word are dropped; the caller masks to the dimension).
fn shl_into(x: &[u64], s: usize, out: &mut [u64]) {
    let word_shift = s / BITS_PER_WORD64;
    let bit_shift = s % BITS_PER_WORD64;
    for j in (word_shift..x.len()).rev() {
        let lo = x[j - word_shift];
        out[j] = if bit_shift == 0 {
            lo
        } else {
            let carry = if j > word_shift {
                x[j - word_shift - 1] >> (BITS_PER_WORD64 - bit_shift)
            } else {
                0
            };
            (lo << bit_shift) | carry
        };
    }
}

/// `out = x >> s` over little-endian `u64` words.
fn shr_into(x: &[u64], s: usize, out: &mut [u64]) {
    let word_shift = s / BITS_PER_WORD64;
    let bit_shift = s % BITS_PER_WORD64;
    for j in 0..x.len().saturating_sub(word_shift) {
        let hi = x[j + word_shift];
        out[j] = if bit_shift == 0 {
            hi
        } else {
            let carry = if j + word_shift + 1 < x.len() {
                x[j + word_shift + 1] << (BITS_PER_WORD64 - bit_shift)
            } else {
                0
            };
            (hi >> bit_shift) | carry
        };
    }
}

impl fmt::Debug for Hv64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Hv64 {{ dim: {}, words: [", self.dim())?;
        for (i, w) in self.words.iter().take(2).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{w:#018x}")?;
        }
        if self.words.len() > 2 {
            write!(f, ", …")?;
        }
        write!(f, "] }}")
    }
}

/// Encodes a sequence into one N-gram, bit-identical to
/// [`crate::encoder::ngram`]: `hvs[0] ⊕ ρ¹hvs[1] ⊕ … ⊕ ρᴺ⁻¹hvs[N−1]`.
///
/// # Panics
///
/// Panics if `hvs` is empty or widths differ.
#[must_use]
pub fn ngram64(hvs: &[Hv64]) -> Hv64 {
    assert!(!hvs.is_empty(), "n-gram of an empty sequence is undefined");
    let mut out = hvs[0].clone();
    for (k, hv) in hvs.iter().enumerate().skip(1) {
        out.bind_assign(&hv.rotate(k));
    }
    out
}

/// Majority with the *paper's kernel policy*, bit-identical to
/// [`crate::bundle::majority_paper`]: an even input count appends the
/// XOR of the first two inputs as the tie-break vector, making the vote
/// effectively odd.
///
/// Takes references so hot paths can vote over item-memory entries
/// without cloning.
///
/// # Panics
///
/// Panics if `inputs` is empty or widths differ.
///
/// # Examples
///
/// ```
/// use hdc::bundle::majority_paper;
/// use hdc::hv64::{majority_paper64, Hv64};
/// use hdc::BinaryHv;
///
/// let inputs: Vec<BinaryHv> = (0..4).map(|s| BinaryHv::random(313, s)).collect();
/// let packed: Vec<Hv64> = inputs.iter().map(Hv64::from_binary).collect();
/// let refs: Vec<&Hv64> = packed.iter().collect();
/// assert_eq!(majority_paper64(&refs).to_binary(), majority_paper(&inputs));
/// ```
#[must_use]
pub fn majority_paper64(inputs: &[&Hv64]) -> Hv64 {
    assert!(!inputs.is_empty(), "majority of an empty set is undefined");
    if inputs.len() == 1 {
        return inputs[0].clone();
    }
    let tie = if inputs.len() % 2 == 0 {
        Some(inputs[0].bind(inputs[1]))
    } else {
        None
    };
    let refs: Vec<&Hv64> = inputs.iter().copied().chain(tie.as_ref()).collect();
    majority_odd_bitsliced64(&refs)
}

/// Componentwise majority of an odd number of equally wide packed
/// hypervectors — the `u64`-lane version of
/// [`crate::bundle::majority_odd_bitsliced`], voting over 64 components
/// per word-operation.
///
/// # Panics
///
/// Panics if `inputs` is empty, has an even length, or widths differ.
#[must_use]
pub fn majority_odd_bitsliced64(inputs: &[&Hv64]) -> Hv64 {
    assert!(!inputs.is_empty(), "majority of an empty set is undefined");
    assert!(
        inputs.len() % 2 == 1,
        "bit-sliced majority requires an odd input count"
    );
    let n_words32 = inputs[0].n_words32;
    for hv in inputs {
        assert_eq!(
            hv.n_words32, n_words32,
            "majority width mismatch: expected {n_words32} u32 words, got {}",
            hv.n_words32
        );
    }
    let n = inputs.len() as u32;
    let threshold = n / 2 + 1;
    let n_planes = (32 - n.leading_zeros()) as usize;
    let n_words = inputs[0].words.len();
    let mut out = Vec::with_capacity(n_words);
    let mut planes = vec![0u64; n_planes];
    for wi in 0..n_words {
        planes.fill(0);
        for hv in inputs {
            // Ripple-carry increment of the vertical counters.
            let mut carry = hv.words[wi];
            for plane in planes.iter_mut() {
                let t = *plane & carry;
                *plane ^= carry;
                carry = t;
            }
            debug_assert_eq!(carry, 0, "counter planes sized for n inputs");
        }
        // count >= threshold ⇔ (count - threshold) does not borrow.
        // Padding lanes count zero and threshold >= 1, so they borrow
        // and stay clear.
        let mut borrow = 0u64;
        for (p, &plane) in planes.iter().enumerate() {
            let t = if threshold >> p & 1 == 1 { u64::MAX } else { 0 };
            borrow = (!plane & (t | borrow)) | (t & borrow);
        }
        out.push(!borrow);
    }
    let tail = (n_words32 * BITS_PER_WORD) % BITS_PER_WORD64;
    if tail != 0 {
        out[n_words - 1] &= (1u64 << tail) - 1;
    }
    Hv64 {
        words: out.into_boxed_slice(),
        n_words32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::majority_paper;
    use crate::encoder::ngram;
    use crate::rng::Xoshiro256PlusPlus;

    fn pair(n_words32: usize, seed: u64) -> (BinaryHv, Hv64) {
        let hv = BinaryHv::random(n_words32, seed);
        let packed = Hv64::from_binary(&hv);
        (hv, packed)
    }

    #[test]
    fn roundtrip_is_lossless_for_even_and_odd_widths() {
        for n_words32 in [1usize, 2, 3, 7, 16, 313] {
            let (hv, packed) = pair(n_words32, n_words32 as u64);
            assert_eq!(packed.to_binary(), hv, "{n_words32} words");
            assert_eq!(packed.dim(), hv.dim());
            assert_eq!(packed.n_words(), n_words32.div_ceil(2));
            assert_eq!(packed.count_ones(), hv.count_ones());
        }
    }

    #[test]
    fn padding_bits_stay_zero() {
        let (_, packed) = pair(313, 9);
        // 313 u32 words → 157 u64 words; top 32 bits of the last are pad.
        assert_eq!(packed.words()[156] >> 32, 0);
        let rotated = packed.rotate(1);
        assert_eq!(rotated.words()[156] >> 32, 0);
    }

    #[test]
    fn bind_matches_u32_model() {
        for n_words32 in [1usize, 3, 8, 313] {
            let (a, a64) = pair(n_words32, 1);
            let (b, b64) = pair(n_words32, 2);
            assert_eq!(a64.bind(&b64).to_binary(), a.bind(&b), "{n_words32} words");
        }
    }

    #[test]
    fn hamming_matches_u32_model() {
        for n_words32 in [1usize, 3, 8, 313] {
            let (a, a64) = pair(n_words32, 3);
            let (b, b64) = pair(n_words32, 4);
            assert_eq!(a64.hamming(&b64), a.hamming(&b), "{n_words32} words");
        }
    }

    #[test]
    fn rotate_matches_u32_model_across_shifts() {
        for n_words32 in [1usize, 2, 3, 5, 313] {
            let (a, a64) = pair(n_words32, 5);
            let dim = a.dim();
            for k in [0, 1, 31, 32, 33, 63, 64, 65, 127, dim - 1, dim, dim + 7] {
                assert_eq!(
                    a64.rotate(k).to_binary(),
                    a.rotate(k),
                    "{n_words32} words, k = {k}"
                );
            }
        }
    }

    #[test]
    fn rotate_randomized_against_u32_model() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(0xFA57);
        for case in 0..64 {
            let n_words32 = 1 + (rng.next_below(20) as usize);
            let (a, a64) = pair(n_words32, rng.next_u64());
            let k = rng.next_below(2 * a.dim() as u32) as usize;
            assert_eq!(a64.rotate(k).to_binary(), a.rotate(k), "case {case}");
        }
    }

    #[test]
    fn ngram_matches_u32_model() {
        for (n_words32, n) in [(3usize, 2usize), (5, 3), (313, 4)] {
            let hvs: Vec<BinaryHv> = (0..n)
                .map(|s| BinaryHv::random(n_words32, 40 + s as u64))
                .collect();
            let packed: Vec<Hv64> = hvs.iter().map(Hv64::from_binary).collect();
            assert_eq!(
                ngram64(&packed).to_binary(),
                ngram(&hvs),
                "{n_words32} words, N = {n}"
            );
        }
    }

    #[test]
    fn majority_matches_u32_model_odd_and_even() {
        for n in 1usize..10 {
            for n_words32 in [1usize, 3, 11, 313] {
                let hvs: Vec<BinaryHv> = (0..n)
                    .map(|s| BinaryHv::random(n_words32, 900 + s as u64))
                    .collect();
                let packed: Vec<Hv64> = hvs.iter().map(Hv64::from_binary).collect();
                let refs: Vec<&Hv64> = packed.iter().collect();
                assert_eq!(
                    majority_paper64(&refs).to_binary(),
                    majority_paper(&hvs),
                    "{n_words32} words, n = {n}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn bind_width_mismatch_panics() {
        let (_, a) = pair(2, 1);
        let (_, b) = pair(3, 2);
        let _ = a.bind(&b);
    }

    #[test]
    #[should_panic(expected = "odd input count")]
    fn bitsliced_majority_rejects_even_counts() {
        let (_, a) = pair(1, 1);
        let (_, b) = pair(1, 2);
        let _ = majority_odd_bitsliced64(&[&a, &b]);
    }
}
