//! # `hdc` — binary hyperdimensional computing
//!
//! A from-scratch implementation of binary high-dimensional (HD) computing
//! as used by *PULP-HD: Accelerating Brain-Inspired High-Dimensional
//! Computing on a Parallel Ultra-Low Power Platform* (DAC 2018):
//! hypervectors packed 32 components per word, the MAP operation set
//! (multiply = XOR, add = componentwise majority, permute = rotation), item
//! memories, spatial/temporal encoders, and an associative memory.
//!
//! This crate is the **golden model**: the accelerated kernels that run on
//! the simulated PULP cluster (`pulp-hd-core`) reproduce every intermediate
//! hypervector of this implementation bit-for-bit.
//!
//! ## Quick start
//!
//! ```
//! use hdc::{HdClassifier, HdConfig};
//!
//! // 2048-bit hypervectors, 4 channels, 22 amplitude levels,
//! // 5-sample windows (10 ms at 500 Hz).
//! let config = HdConfig { n_words: 64, channels: 4, levels: 22,
//!                         ngram: 1, window: 5, seed: 7 };
//! let mut clf = HdClassifier::new(config, 2)?;
//!
//! let open = vec![[1_000u16, 2_000, 1_500, 900]; 5];
//! let fist = vec![[48_000u16, 52_000, 45_000, 50_000]; 5];
//! clf.train_window(0, &open)?;
//! clf.train_window(1, &fist)?;
//! clf.finalize();
//!
//! assert_eq!(clf.predict(&fist)?.class(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ## Modules
//!
//! * [`hv`] — packed binary hypervectors and the MAP primitives.
//! * [`hv64`] — `u64`-repacked hypervectors for throughput-oriented
//!   host backends (lossless conversion, bit-identical operations).
//! * [`bundle`] — componentwise majority with explicit tie-break policies.
//! * [`item_memory`] — item memory (IM) and continuous item memory (CIM).
//! * [`encoder`] — spatial and temporal (N-gram) encoders.
//! * [`am`] — associative memory and nearest-prototype classification.
//! * [`classifier`] — the end-to-end chain.
//! * [`simd`] — runtime-dispatched SIMD kernels (AVX2 with a portable
//!   fallback) behind the `hv64` hot paths.
//! * [`twins`] — the differential-twin registry pairing every
//!   `#[target_feature]` kernel with its portable reference, consumed
//!   by the `pulp-hd-audit` lint and fuzz gates.
//! * [`rng`] — deterministic generators (reproducibility is part of the
//!   model definition).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod am;
pub mod bundle;
pub mod classifier;
pub mod encoder;
pub mod hv;
pub mod hv64;
pub mod item_memory;
pub mod rng;
pub mod simd;
pub mod twins;

pub use am::{AssociativeMemory, Classification};
pub use bundle::{Bundler, TieBreak};
pub use classifier::{ConfigError, HdClassifier, HdConfig, WindowError};
pub use encoder::{ngram, SpatialEncoder, TemporalEncoder};
pub use hv::{words_for_dim, BinaryHv, BITS_PER_WORD};
pub use hv64::{Hv64, BITS_PER_WORD64};
pub use item_memory::{quantize_code, ContinuousItemMemory, ItemMemory};
pub use simd::Simd;
