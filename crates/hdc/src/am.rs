//! Associative memory (AM): prototype storage, nearest-prototype
//! classification, and online updates.
//!
//! During training, every encoded query hypervector of a class is added
//! into that class's component counters; the binary *prototype* is the
//! componentwise majority over all of them. During classification the AM
//! returns the label whose prototype has minimum Hamming distance to the
//! query. Because the counters are kept, the AM "can be continuously
//! updated for on-line learning" exactly as the paper notes.

use crate::bundle::{Bundler, TieBreak};
use crate::hv::BinaryHv;
use crate::rng::derive_seed;

/// Outcome of a nearest-prototype search.
///
/// # Examples
///
/// ```
/// use hdc::{AssociativeMemory, BinaryHv};
///
/// let mut am = AssociativeMemory::new(2, 313, 0);
/// let a = BinaryHv::random(313, 1);
/// let b = BinaryHv::random(313, 2);
/// am.train(0, &a);
/// am.train(1, &b);
/// let result = am.classify(&a.with_bit_flips(400, 9));
/// assert_eq!(result.class(), 0);
/// assert!(result.distance() < result.distances()[1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Classification {
    class: usize,
    distances: Vec<u32>,
}

impl Classification {
    /// The winning class (minimum Hamming distance; ties go to the lowest
    /// index, matching the kernel's strict-less search).
    #[must_use]
    pub fn class(&self) -> usize {
        self.class
    }

    /// Hamming distance of the winning prototype.
    #[must_use]
    pub fn distance(&self) -> u32 {
        self.distances[self.class]
    }

    /// Hamming distance to every class prototype, indexed by class.
    #[must_use]
    pub fn distances(&self) -> &[u32] {
        &self.distances
    }

    /// Distance gap between the runner-up and the winner — a confidence
    /// proxy (0 means an exact tie).
    ///
    /// Returns `None` when only one class exists.
    #[must_use]
    pub fn margin(&self) -> Option<u32> {
        let best = self.distances[self.class];
        self.distances
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != self.class)
            .map(|(_, &d)| d)
            .min()
            .map(|second| second - best)
    }
}

/// The associative memory: one counter bundle and one finalized binary
/// prototype per class.
#[derive(Debug, Clone)]
pub struct AssociativeMemory {
    bundlers: Vec<Bundler>,
    prototypes: Vec<BinaryHv>,
    stale: Vec<bool>,
    tie_seed: u64,
}

impl AssociativeMemory {
    /// Creates an AM for `n_classes` classes of `n_words`-word
    /// hypervectors. Training ties are broken pseudo-randomly per class,
    /// derived from `tie_seed`.
    ///
    /// # Panics
    ///
    /// Panics if `n_classes == 0` or `n_words == 0`.
    #[must_use]
    pub fn new(n_classes: usize, n_words: usize, tie_seed: u64) -> Self {
        assert!(n_classes > 0, "associative memory needs at least one class");
        Self {
            bundlers: (0..n_classes).map(|_| Bundler::new(n_words)).collect(),
            prototypes: (0..n_classes).map(|_| BinaryHv::zeros(n_words)).collect(),
            stale: vec![false; n_classes],
            tie_seed,
        }
    }

    /// Number of classes.
    #[must_use]
    pub fn n_classes(&self) -> usize {
        self.prototypes.len()
    }

    /// Hypervector width in words.
    #[must_use]
    pub fn n_words(&self) -> usize {
        self.bundlers[0].n_words()
    }

    /// Number of training examples accumulated for `class`.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    #[must_use]
    pub fn examples(&self, class: usize) -> u32 {
        self.bundlers[class].len()
    }

    /// Adds an encoded query hypervector to `class`'s accumulator and
    /// marks its prototype for re-thresholding.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range or widths differ.
    pub fn train(&mut self, class: usize, query: &BinaryHv) {
        self.bundlers[class].add(query);
        self.stale[class] = true;
    }

    /// Re-thresholds all stale prototypes. Called automatically by
    /// [`classify`](Self::classify) via [`prototype`](Self::prototype);
    /// exposed so training cost can be paid eagerly.
    pub fn finalize(&mut self) {
        for class in 0..self.prototypes.len() {
            if self.stale[class] && !self.bundlers[class].is_empty() {
                let tie = derive_seed(self.tie_seed, class as u64);
                self.bundlers[class]
                    .majority_into(TieBreak::Seeded(tie), &mut self.prototypes[class]);
                self.stale[class] = false;
            }
        }
    }

    /// The binary prototype of `class` (re-thresholding first if stale).
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    #[must_use]
    pub fn prototype(&mut self, class: usize) -> &BinaryHv {
        self.finalize();
        &self.prototypes[class]
    }

    /// All prototypes in class order (re-thresholding first if stale).
    #[must_use]
    pub fn prototypes(&mut self) -> &[BinaryHv] {
        self.finalize();
        &self.prototypes
    }

    /// Overwrites `class`'s prototype directly, discarding its counters —
    /// used when loading a model trained elsewhere (e.g. into/out of the
    /// simulated platform).
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range or widths differ.
    pub fn set_prototype(&mut self, class: usize, prototype: BinaryHv) {
        assert_eq!(
            prototype.n_words(),
            self.n_words(),
            "prototype width mismatch: expected {} words, got {}",
            self.n_words(),
            prototype.n_words()
        );
        self.bundlers[class].clear();
        self.stale[class] = false;
        self.prototypes[class] = prototype;
    }

    /// Nearest-prototype classification.
    ///
    /// Requires `&mut self` because stale prototypes are re-thresholded
    /// lazily; call [`finalize`](Self::finalize) after training and use
    /// [`classify_finalized`](Self::classify_finalized) for a shared-ref
    /// hot path.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    #[must_use]
    pub fn classify(&mut self, query: &BinaryHv) -> Classification {
        self.finalize();
        self.classify_finalized(query)
    }

    /// Nearest-prototype classification without re-thresholding.
    ///
    /// # Panics
    ///
    /// Panics if widths differ, or (in debug builds) if any prototype is
    /// stale.
    #[must_use]
    pub fn classify_finalized(&self, query: &BinaryHv) -> Classification {
        debug_assert!(
            self.stale.iter().all(|&s| !s),
            "classify_finalized called with stale prototypes"
        );
        let distances: Vec<u32> = self.prototypes.iter().map(|p| p.hamming(query)).collect();
        let class = distances
            .iter()
            .enumerate()
            .min_by_key(|&(_, &d)| d)
            .map(|(i, _)| i)
            .expect("associative memory has at least one class");
        Classification { class, distances }
    }

    /// Nearest-prototype classification with an exact early-exit
    /// ("pruned") scan: a prototype's word loop is abandoned as soon as
    /// its partial Hamming distance exceeds the running minimum at a
    /// 512-bit block boundary.
    ///
    /// The returned class is **always** identical to
    /// [`classify_finalized`](Self::classify_finalized) — an abandoned
    /// prototype's true distance strictly exceeds the final minimum, so
    /// neither the arg-min nor its first-minimum tie order can change.
    /// The [`distances`](Classification::distances) entries follow the
    /// pruned-scan semantics (the word-packed twin is
    /// `hdc::hv64::scan_pruned_into`): exact for every fully scanned
    /// prototype — always including the winner — and otherwise the
    /// partial distance at the abandonment point, a lower bound on the
    /// true distance that still exceeds the winning distance.
    ///
    /// Abandonment points sit at the same 512-bit boundaries on both
    /// representations, so the reported distances equal
    /// `hdc::hv64::scan_pruned_into`'s entry for entry regardless of
    /// packing or SIMD level.
    ///
    /// # Panics
    ///
    /// Panics if widths differ, or (in debug builds) if any prototype is
    /// stale.
    #[must_use]
    pub fn classify_pruned(&self, query: &BinaryHv) -> Classification {
        debug_assert!(
            self.stale.iter().all(|&s| !s),
            "classify_pruned called with stale prototypes"
        );
        // 16 u32 words = 512 bits, the block size of the packed scan.
        const BLOCK_WORDS32: usize = 16;
        let mut best = u32::MAX;
        let mut best_class = 0usize;
        let mut distances = Vec::with_capacity(self.prototypes.len());
        for (class, p) in self.prototypes.iter().enumerate() {
            assert_eq!(
                p.n_words(),
                query.n_words(),
                "prototype width mismatch: expected {} words, got {}",
                p.n_words(),
                query.n_words()
            );
            let mut d = 0u32;
            for (pa, qa) in p
                .words()
                .chunks(BLOCK_WORDS32)
                .zip(query.words().chunks(BLOCK_WORDS32))
            {
                d += pa
                    .iter()
                    .zip(qa)
                    .map(|(a, b)| (a ^ b).count_ones())
                    .sum::<u32>();
                if d > best {
                    break;
                }
            }
            if d < best {
                best = d;
                best_class = class;
            }
            distances.push(d);
        }
        Classification {
            class: best_class,
            distances,
        }
    }

    /// Online update: adds `query` to `class` and re-thresholds only
    /// that prototype **incrementally** — the prototype is updated in
    /// place, touching only words whose majority actually crossed the
    /// threshold, and the seeded tie vector is materialized only when a
    /// component genuinely ties (never for an odd example count). The
    /// result is bit-identical to a full re-threshold
    /// ([`Bundler::majority`] with the class's seeded tie), which a
    /// property test pins.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range or widths differ.
    pub fn update_online(&mut self, class: usize, query: &BinaryHv) {
        self.train(class, query);
        let tie = derive_seed(self.tie_seed, class as u64);
        self.bundlers[class].majority_into(TieBreak::Seeded(tie), &mut self.prototypes[class]);
        self.stale[class] = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trained_am() -> (AssociativeMemory, Vec<BinaryHv>) {
        let centers: Vec<BinaryHv> = (0..5).map(|s| BinaryHv::random(313, 100 + s)).collect();
        let mut am = AssociativeMemory::new(5, 313, 0);
        for (class, center) in centers.iter().enumerate() {
            for trial in 0..9 {
                let noisy = center.with_bit_flips(800, trial);
                am.train(class, &noisy);
            }
        }
        (am, centers)
    }

    #[test]
    fn prototypes_converge_to_class_centers() {
        let (mut am, centers) = trained_am();
        for (class, center) in centers.iter().enumerate() {
            let d = am.prototype(class).normalized_hamming(center);
            assert!(d < 0.05, "class {class}: prototype drifted {d}");
        }
    }

    #[test]
    fn classification_recovers_noisy_queries() {
        let (mut am, centers) = trained_am();
        am.finalize();
        for (class, center) in centers.iter().enumerate() {
            let query = center.with_bit_flips(2000, 42);
            let result = am.classify(&query);
            assert_eq!(result.class(), class);
            assert!(result.margin().unwrap() > 0);
        }
    }

    #[test]
    fn distances_are_reported_for_all_classes() {
        let (mut am, centers) = trained_am();
        let result = am.classify(&centers[2]);
        assert_eq!(result.distances().len(), 5);
        assert_eq!(result.class(), 2);
        assert_eq!(result.distance(), result.distances()[2]);
    }

    #[test]
    fn tie_on_distance_goes_to_lowest_class() {
        let mut am = AssociativeMemory::new(3, 4, 0);
        let p = BinaryHv::random(4, 1);
        am.set_prototype(0, p.clone());
        am.set_prototype(1, p.clone());
        am.set_prototype(2, p.clone());
        assert_eq!(am.classify(&p).class(), 0);
    }

    #[test]
    fn set_prototype_discards_counters() {
        let mut am = AssociativeMemory::new(2, 8, 0);
        am.train(0, &BinaryHv::random(8, 1));
        let fresh = BinaryHv::random(8, 2);
        am.set_prototype(0, fresh.clone());
        assert_eq!(am.examples(0), 0);
        assert_eq!(am.prototype(0), &fresh);
    }

    #[test]
    fn online_update_moves_prototype_toward_new_data() {
        let a = BinaryHv::random(313, 1);
        let b = BinaryHv::random(313, 2);
        let mut am = AssociativeMemory::new(2, 313, 0);
        am.train(0, &a);
        am.train(1, &b);
        am.finalize();

        // Stream queries near a drifted version of class 0.
        let drifted = a.with_bit_flips(1500, 7);
        let before = am.prototype(0).hamming(&drifted);
        for s in 0..8 {
            am.update_online(0, &drifted.with_bit_flips(200, s));
        }
        let after = am.prototype(0).hamming(&drifted);
        assert!(
            after < before,
            "online update should track drift: {before} -> {after}"
        );
    }

    /// The incremental online update is pinned to the full re-threshold:
    /// after every single update — through even counts (seeded ties),
    /// odd counts, and interleavings with batch training — the prototype
    /// equals a from-scratch majority over the class counters.
    #[test]
    fn online_update_is_bit_identical_to_full_rethreshold() {
        let mut am = AssociativeMemory::new(3, 9, 0xA11E);
        let mut step = 0u64;
        for round in 0..12 {
            let class = round % 3;
            // Mix plain training (stale prototypes) into the stream so
            // updates start from unfinalized state too.
            if round % 4 == 3 {
                am.train(class, &BinaryHv::random(9, 10_000 + step));
                step += 1;
            }
            let query = BinaryHv::random(9, 20_000 + step);
            step += 1;
            am.update_online(class, &query);
            let tie = derive_seed(0xA11E, class as u64);
            let expected = am.bundlers[class].majority(TieBreak::Seeded(tie));
            assert_eq!(
                am.prototypes[class], expected,
                "round {round}: incremental update diverged from full majority"
            );
            assert!(!am.stale[class], "round {round}: class left stale");
        }
    }

    #[test]
    fn training_is_deterministic_given_seed() {
        let (mut am1, _) = trained_am();
        let (mut am2, _) = trained_am();
        for class in 0..5 {
            assert_eq!(am1.prototype(class), am2.prototype(class));
        }
    }

    #[test]
    fn graceful_degradation_under_prototype_faults() {
        // The paper's robustness claim: classification survives faulty
        // components. Flip 10% of prototype bits and expect queries to
        // still resolve.
        let (mut am, centers) = trained_am();
        am.finalize();
        let dim = 313 * 32;
        for class in 0..5 {
            let faulty = am.prototype(class).with_bit_flips(dim / 10, 3);
            am.set_prototype(class, faulty);
        }
        let mut correct = 0;
        for (class, center) in centers.iter().enumerate() {
            let query = center.with_bit_flips(1000, 5);
            if am.classify(&query).class() == class {
                correct += 1;
            }
        }
        assert_eq!(correct, 5, "10% faults should not break classification");
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn set_prototype_width_mismatch_panics() {
        let mut am = AssociativeMemory::new(2, 8, 0);
        am.set_prototype(0, BinaryHv::zeros(9));
    }

    #[test]
    fn pruned_classification_matches_full_scan_class() {
        let (mut am, centers) = trained_am();
        am.finalize();
        for (i, center) in centers.iter().enumerate() {
            for seed in 0..8 {
                let query = center.with_bit_flips(1500 + 300 * seed as usize, seed);
                let full = am.classify_finalized(&query);
                let pruned = am.classify_pruned(&query);
                assert_eq!(pruned.class(), full.class(), "center {i}, seed {seed}");
                assert_eq!(
                    pruned.distance(),
                    full.distance(),
                    "center {i}, seed {seed}: winning distance must be exact"
                );
                for (k, (&p, &f)) in pruned.distances().iter().zip(full.distances()).enumerate() {
                    assert!(p <= f, "center {i}, class {k}: lower bound");
                    assert!(
                        k == pruned.class() || p >= full.distance(),
                        "center {i}, class {k}: cannot undercut the winner"
                    );
                }
            }
        }
    }

    /// The `u32` pruned scan and the `u64`-packed pruned scan abandon
    /// prototypes at the same 512-bit block boundaries, so their
    /// distance vectors agree entry for entry — not just in class.
    #[test]
    fn pruned_distances_match_the_packed_scan_exactly() {
        use crate::hv64::{scan_pruned_into, Hv64};
        let (mut am, centers) = trained_am();
        am.finalize();
        let packed: Vec<Hv64> = (0..am.n_classes())
            .map(|class| Hv64::from_binary(am.prototype(class)))
            .collect();
        let mut packed_distances = Vec::new();
        for (i, center) in centers.iter().enumerate() {
            for seed in 0..6 {
                let query = center.with_bit_flips(1200 + 250 * seed as usize, seed);
                let scalar = am.classify_pruned(&query);
                let class =
                    scan_pruned_into(&packed, &Hv64::from_binary(&query), &mut packed_distances);
                assert_eq!(scalar.class(), class, "center {i}, seed {seed}");
                assert_eq!(
                    scalar.distances(),
                    &packed_distances[..],
                    "center {i}, seed {seed}: distances must match block for block"
                );
            }
        }
    }

    #[test]
    fn pruned_classification_breaks_ties_toward_lowest_class() {
        let mut am = AssociativeMemory::new(4, 4, 0);
        let p = BinaryHv::random(4, 1);
        for class in 0..4 {
            am.set_prototype(class, p.clone());
        }
        let probe = BinaryHv::random(4, 2);
        assert_eq!(am.classify_pruned(&probe).class(), 0);
        assert_eq!(
            am.classify_pruned(&probe).distance(),
            am.classify_finalized(&probe).distance()
        );
    }
}
