//! Packed binary hypervectors.
//!
//! A [`BinaryHv`] stores a `{0,1}^D` hypervector packed 32 components per
//! `u32` word, exactly as the PULP-HD C implementation does. The paper's
//! "10,000-dimensional" vectors therefore occupy 313 words and effectively
//! live in a 10,016-dimensional space (the padding bits participate in all
//! operations, matching the released code — see `DESIGN.md` §2).
//!
//! Component `i` is bit `i % 32` of word `i / 32`.

use core::fmt;

use crate::rng::Xoshiro256PlusPlus;

/// Number of binary components packed into one machine word.
pub const BITS_PER_WORD: usize = 32;

/// Number of `u32` words needed to hold `dim` binary components.
///
/// # Examples
///
/// ```
/// assert_eq!(hdc::hv::words_for_dim(10_000), 313);
/// assert_eq!(hdc::hv::words_for_dim(200), 7);
/// ```
#[must_use]
pub const fn words_for_dim(dim: usize) -> usize {
    dim.div_ceil(BITS_PER_WORD)
}

/// A binary hypervector packed into `u32` words.
///
/// All mutating and combining operations require operands of the same
/// width; widths are validated eagerly (see individual methods).
///
/// # Examples
///
/// ```
/// use hdc::BinaryHv;
///
/// let a = BinaryHv::random(313, 1);
/// let b = BinaryHv::random(313, 2);
/// // Random hypervectors are quasi-orthogonal: distance ≈ D/2.
/// let d = a.hamming(&b);
/// assert!((4500..5500).contains(&d));
/// // Binding is XOR: it is its own inverse.
/// let bound = a.bind(&b);
/// assert_eq!(bound.bind(&b), a);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BinaryHv {
    words: Box<[u32]>,
}

impl BinaryHv {
    /// Creates the all-zero hypervector of `n_words` words.
    ///
    /// # Panics
    ///
    /// Panics if `n_words == 0`; a zero-width hypervector is never
    /// meaningful and would otherwise propagate silently.
    #[must_use]
    pub fn zeros(n_words: usize) -> Self {
        assert!(n_words > 0, "hypervector must have at least one word");
        Self {
            words: vec![0; n_words].into_boxed_slice(),
        }
    }

    /// Creates a pseudo-random dense hypervector (i.i.d. fair bits) from a
    /// dedicated seed.
    ///
    /// # Panics
    ///
    /// Panics if `n_words == 0`.
    #[must_use]
    pub fn random(n_words: usize, seed: u64) -> Self {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        Self::random_from(n_words, &mut rng)
    }

    /// Creates a pseudo-random hypervector drawing from an existing stream.
    ///
    /// # Panics
    ///
    /// Panics if `n_words == 0`.
    #[must_use]
    pub fn random_from(n_words: usize, rng: &mut Xoshiro256PlusPlus) -> Self {
        assert!(n_words > 0, "hypervector must have at least one word");
        let words: Vec<u32> = (0..n_words).map(|_| rng.next_u32()).collect();
        Self {
            words: words.into_boxed_slice(),
        }
    }

    /// Wraps an existing word vector.
    ///
    /// # Panics
    ///
    /// Panics if `words` is empty.
    #[must_use]
    pub fn from_words(words: Vec<u32>) -> Self {
        assert!(!words.is_empty(), "hypervector must have at least one word");
        Self {
            words: words.into_boxed_slice(),
        }
    }

    /// Dimensionality (number of binary components, always a multiple of 32).
    #[must_use]
    pub fn dim(&self) -> usize {
        self.words.len() * BITS_PER_WORD
    }

    /// Number of packed words.
    #[must_use]
    pub fn n_words(&self) -> usize {
        self.words.len()
    }

    /// The packed words, little-endian in component order.
    #[must_use]
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    /// Mutable access to the packed words.
    pub fn words_mut(&mut self) -> &mut [u32] {
        &mut self.words
    }

    /// Value of component `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.dim()`.
    #[must_use]
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < self.dim(), "component {i} out of range {}", self.dim());
        (self.words[i / BITS_PER_WORD] >> (i % BITS_PER_WORD)) & 1 == 1
    }

    /// Sets component `i` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.dim()`.
    pub fn set_bit(&mut self, i: usize, value: bool) {
        assert!(i < self.dim(), "component {i} out of range {}", self.dim());
        let mask = 1u32 << (i % BITS_PER_WORD);
        if value {
            self.words[i / BITS_PER_WORD] |= mask;
        } else {
            self.words[i / BITS_PER_WORD] &= !mask;
        }
    }

    /// Number of components set to one.
    #[must_use]
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Componentwise XOR — the HD *multiplication* (binding) operation.
    ///
    /// # Panics
    ///
    /// Panics if the operands have different widths.
    #[must_use]
    pub fn bind(&self, other: &Self) -> Self {
        let mut out = self.clone();
        out.bind_assign(other);
        out
    }

    /// In-place componentwise XOR.
    ///
    /// # Panics
    ///
    /// Panics if the operands have different widths.
    pub fn bind_assign(&mut self, other: &Self) {
        assert_eq!(
            self.n_words(),
            other.n_words(),
            "hypervector width mismatch: {} vs {} words",
            self.n_words(),
            other.n_words()
        );
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a ^= *b;
        }
    }

    /// The permutation ρ: rotates all components left by one position
    /// (component `i` of the result is component `i-1` of the input,
    /// wrapping at the packed width).
    ///
    /// This matches a `u32`-array bit-rotation, carries included, as the
    /// embedded kernels implement it.
    #[must_use]
    pub fn rotate_one(&self) -> Self {
        self.rotate(1)
    }

    /// ρᵏ: rotates all components left by `k` positions (mod the packed
    /// width). `rotate(0)` is the identity.
    #[must_use]
    pub fn rotate(&self, k: usize) -> Self {
        let n = self.words.len();
        let dim = self.dim();
        let k = k % dim;
        if k == 0 {
            return self.clone();
        }
        let word_shift = k / BITS_PER_WORD;
        let bit_shift = k % BITS_PER_WORD;
        let mut out = vec![0u32; n];
        for (j, slot) in out.iter_mut().enumerate() {
            // Source words, walking backwards with wraparound.
            let lo = self.words[(j + n - word_shift) % n];
            if bit_shift == 0 {
                *slot = lo;
            } else {
                let hi = self.words[(j + n - word_shift - 1) % n];
                *slot = (lo << bit_shift) | (hi >> (BITS_PER_WORD - bit_shift));
            }
        }
        Self {
            words: out.into_boxed_slice(),
        }
    }

    /// Hamming distance: number of components at which the vectors differ.
    ///
    /// # Panics
    ///
    /// Panics if the operands have different widths.
    #[must_use]
    pub fn hamming(&self, other: &Self) -> u32 {
        assert_eq!(
            self.n_words(),
            other.n_words(),
            "hypervector width mismatch: {} vs {} words",
            self.n_words(),
            other.n_words()
        );
        self.words
            .iter()
            .zip(other.words.iter())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum()
    }

    /// Hamming distance normalized to `[0, 1]`.
    ///
    /// Quasi-orthogonal vectors score ≈ 0.5.
    ///
    /// # Panics
    ///
    /// Panics if the operands have different widths.
    #[must_use]
    pub fn normalized_hamming(&self, other: &Self) -> f64 {
        f64::from(self.hamming(other)) / self.dim() as f64
    }

    /// Returns a copy with exactly `count` distinct, pseudo-randomly chosen
    /// components flipped — used for fault-injection / graceful-degradation
    /// experiments.
    ///
    /// # Panics
    ///
    /// Panics if `count > self.dim()`.
    #[must_use]
    pub fn with_bit_flips(&self, count: usize, seed: u64) -> Self {
        assert!(
            count <= self.dim(),
            "cannot flip {count} of {} components",
            self.dim()
        );
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        let mut positions: Vec<usize> = (0..self.dim()).collect();
        rng.shuffle(&mut positions);
        let mut out = self.clone();
        for &p in &positions[..count] {
            out.set_bit(p, !out.bit(p));
        }
        out
    }
}

impl fmt::Debug for BinaryHv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // 313-word dumps drown test output; show width and a prefix.
        write!(f, "BinaryHv {{ dim: {}, words: [", self.dim())?;
        for (i, w) in self.words.iter().take(4).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{w:#010x}")?;
        }
        if self.words.len() > 4 {
            write!(f, ", …")?;
        }
        write!(f, "] }}")
    }
}

impl fmt::Binary for BinaryHv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for w in self.words.iter().rev() {
            write!(f, "{w:032b}")?;
        }
        Ok(())
    }
}

impl fmt::LowerHex for BinaryHv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for w in self.words.iter().rev() {
            write!(f, "{w:08x}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_for_dim_matches_paper_sizes() {
        assert_eq!(words_for_dim(10_000), 313);
        assert_eq!(words_for_dim(200), 7);
        assert_eq!(words_for_dim(32), 1);
        assert_eq!(words_for_dim(33), 2);
    }

    #[test]
    fn zeros_has_no_ones() {
        let z = BinaryHv::zeros(10);
        assert_eq!(z.count_ones(), 0);
        assert_eq!(z.dim(), 320);
    }

    #[test]
    #[should_panic(expected = "at least one word")]
    fn zero_width_rejected() {
        let _ = BinaryHv::zeros(0);
    }

    #[test]
    fn random_is_roughly_balanced() {
        let hv = BinaryHv::random(313, 42);
        let ones = hv.count_ones();
        // Binomial(10016, 0.5): 5σ ≈ 250.
        assert!((4758..=5258).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn random_is_seed_deterministic() {
        assert_eq!(BinaryHv::random(313, 7), BinaryHv::random(313, 7));
        assert_ne!(BinaryHv::random(313, 7), BinaryHv::random(313, 8));
    }

    #[test]
    fn bit_get_set_roundtrip() {
        let mut hv = BinaryHv::zeros(3);
        for i in [0, 1, 31, 32, 33, 63, 64, 95] {
            assert!(!hv.bit(i));
            hv.set_bit(i, true);
            assert!(hv.bit(i));
        }
        assert_eq!(hv.count_ones(), 8);
        hv.set_bit(33, false);
        assert!(!hv.bit(33));
        assert_eq!(hv.count_ones(), 7);
    }

    #[test]
    fn bind_is_xor_and_self_inverse() {
        let a = BinaryHv::random(16, 1);
        let b = BinaryHv::random(16, 2);
        let c = a.bind(&b);
        assert_eq!(c.bind(&b), a);
        assert_eq!(c.bind(&a), b);
        assert_eq!(a.bind(&a).count_ones(), 0);
    }

    #[test]
    fn bind_produces_dissimilar_vector() {
        let a = BinaryHv::random(313, 1);
        let b = BinaryHv::random(313, 2);
        let c = a.bind(&b);
        // Binding must map far away from both operands.
        assert!(c.normalized_hamming(&a) > 0.45);
        assert!(c.normalized_hamming(&b) > 0.45);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn bind_width_mismatch_panics() {
        let a = BinaryHv::zeros(2);
        let b = BinaryHv::zeros(3);
        let _ = a.bind(&b);
    }

    #[test]
    fn rotate_one_matches_per_bit_reference() {
        let hv = BinaryHv::random(5, 33);
        let rot = hv.rotate_one();
        let dim = hv.dim();
        for i in 0..dim {
            assert_eq!(rot.bit(i), hv.bit((i + dim - 1) % dim), "bit {i}");
        }
    }

    #[test]
    fn rotate_k_matches_per_bit_reference() {
        let hv = BinaryHv::random(4, 5);
        let dim = hv.dim();
        for k in [0, 1, 31, 32, 33, 64, 127, dim - 1] {
            let rot = hv.rotate(k);
            for i in 0..dim {
                assert_eq!(rot.bit(i), hv.bit((i + dim - k) % dim), "k={k} bit {i}");
            }
        }
    }

    #[test]
    fn rotate_composes_additively() {
        let hv = BinaryHv::random(7, 9);
        assert_eq!(hv.rotate(3).rotate(4), hv.rotate(7));
        assert_eq!(hv.rotate(hv.dim()), hv);
    }

    #[test]
    fn rotation_preserves_distance() {
        let a = BinaryHv::random(313, 1);
        let b = BinaryHv::random(313, 2);
        assert_eq!(a.rotate(17).hamming(&b.rotate(17)), a.hamming(&b));
    }

    #[test]
    fn rotation_generates_dissimilar_vector() {
        let a = BinaryHv::random(313, 1);
        // ρ(a) should be quasi-orthogonal to a.
        assert!(a.rotate_one().normalized_hamming(&a) > 0.45);
    }

    #[test]
    fn hamming_is_symmetric_and_zero_on_self() {
        let a = BinaryHv::random(20, 3);
        let b = BinaryHv::random(20, 4);
        assert_eq!(a.hamming(&b), b.hamming(&a));
        assert_eq!(a.hamming(&a), 0);
    }

    #[test]
    fn bit_flips_change_exactly_count_components() {
        let a = BinaryHv::random(313, 11);
        let flipped = a.with_bit_flips(100, 1);
        assert_eq!(a.hamming(&flipped), 100);
    }

    #[test]
    fn debug_and_binary_formatting_nonempty() {
        let a = BinaryHv::zeros(1);
        assert!(format!("{a:?}").contains("dim: 32"));
        assert_eq!(format!("{a:b}").len(), 32);
        assert_eq!(format!("{a:x}").len(), 8);
    }
}
