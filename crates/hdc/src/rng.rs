//! Deterministic pseudo-random number generation.
//!
//! Hyperdimensional computing draws all of its representational power from
//! pseudo-random seed hypervectors, so reproducibility of the generator is
//! part of the *model definition*: two runs with the same master seed must
//! produce bit-identical item memories, or trained associative memories
//! cannot be reloaded. To keep that guarantee independent of external crate
//! versions, this module implements its own small, well-known generators:
//!
//! * [`SplitMix64`] — used for seed derivation (stream splitting), and
//! * [`Xoshiro256PlusPlus`] — the general-purpose stream generator.
//!
//! Both match the reference implementations by Blackman & Vigna, and the
//! unit tests below pin their output sequences.
//!
//! # Examples
//!
//! ```
//! use hdc::rng::Xoshiro256PlusPlus;
//!
//! let mut a = Xoshiro256PlusPlus::seed_from_u64(42);
//! let mut b = Xoshiro256PlusPlus::seed_from_u64(42);
//! assert_eq!(a.next_u64(), b.next_u64());
//! ```

/// SplitMix64 generator, used to expand a single `u64` seed into
/// independent streams.
///
/// # Examples
///
/// ```
/// use hdc::rng::SplitMix64;
///
/// let mut sm = SplitMix64::new(0);
/// // Reference value from the public-domain SplitMix64 implementation.
/// assert_eq!(sm.next_u64(), 0xe220a8397b1dcdaf);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator with the given state.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next value in the sequence.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Derives an independent sub-seed from `(master, stream)`.
///
/// Used throughout the crate to give every item-memory entry, level
/// hypervector, and tie-break vector its own decorrelated stream while
/// staying a pure function of the master seed.
///
/// # Examples
///
/// ```
/// use hdc::rng::derive_seed;
///
/// assert_ne!(derive_seed(1, 0), derive_seed(1, 1));
/// assert_eq!(derive_seed(7, 3), derive_seed(7, 3));
/// ```
#[must_use]
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    let mut sm = SplitMix64::new(master ^ stream.wrapping_mul(0xa076_1d64_78bd_642f));
    // Burn one output so that `master == 0` does not yield the all-zero
    // fixed point for stream 0.
    let a = sm.next_u64();
    a ^ sm.next_u64().rotate_left(23)
}

/// xoshiro256++ 1.0, the all-purpose generator used for hypervector
/// material.
///
/// # Examples
///
/// ```
/// use hdc::rng::Xoshiro256PlusPlus;
///
/// let mut rng = Xoshiro256PlusPlus::seed_from_u64(123);
/// let word: u32 = rng.next_u32();
/// let _ = word;
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Seeds the full 256-bit state from a `u64` via SplitMix64, as
    /// recommended by the algorithm's authors.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Self { s }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns the next 32 random bits (upper half of [`next_u64`]).
    ///
    /// [`next_u64`]: Self::next_u64
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns a uniformly distributed value in `0..bound`.
    ///
    /// Uses Lemire's multiply-shift rejection method, which is unbiased.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "next_below bound must be positive");
        loop {
            let x = self.next_u32();
            let m = u64::from(x) * u64::from(bound);
            let low = m as u32;
            if low >= bound || low >= bound.wrapping_neg() % bound {
                return (m >> 32) as u32;
            }
        }
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 top bits → [0,1) with full double precision.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a standard-normal sample (Box–Muller, cached second value
    /// discarded for simplicity — throughput is irrelevant here).
    pub fn next_normal(&mut self) -> f64 {
        // Avoid log(0) by nudging u1 away from zero.
        let u1 = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let u1 = u1.max(1e-300);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * core::f64::consts::PI * u2).cos()
    }

    /// Fisher–Yates shuffles `slice` in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_below(i as u32 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_sequence() {
        // First three outputs for seed 0, from the reference C code.
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xe220_a839_7b1d_cdaf);
        assert_eq!(sm.next_u64(), 0x6e78_9e6a_a1b9_65f4);
        assert_eq!(sm.next_u64(), 0x06c4_5d18_8009_454f);
    }

    #[test]
    fn xoshiro_is_deterministic_and_varies_with_seed() {
        let mut a = Xoshiro256PlusPlus::seed_from_u64(1);
        let mut b = Xoshiro256PlusPlus::seed_from_u64(1);
        let mut c = Xoshiro256PlusPlus::seed_from_u64(2);
        let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn derive_seed_streams_are_distinct() {
        let seeds: Vec<u64> = (0..64).map(|i| derive_seed(0xdead_beef, i)).collect();
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), seeds.len(), "collision in derived seeds");
    }

    #[test]
    fn next_below_is_in_range_and_covers_values() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(9);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.next_below(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        for _ in 0..1000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn normal_has_plausible_moments() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(77);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.next_normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle left input unchanged"
        );
    }
}
