//! End-to-end HD classifier: quantize → spatial encode → temporal encode
//! → associative memory.
//!
//! [`HdClassifier`] is the golden model of the full PULP-HD processing
//! chain. The accelerated kernels in `pulp-hd-core` reproduce it
//! bit-exactly on the simulated platform; integration tests compare the
//! two on every intermediate hypervector.

use crate::am::{AssociativeMemory, Classification};
use crate::encoder::{SpatialEncoder, TemporalEncoder};
use crate::hv::{words_for_dim, BinaryHv};
use crate::rng::derive_seed;

/// Hyper-parameters of the HD classification chain.
///
/// # Examples
///
/// ```
/// use hdc::HdConfig;
///
/// let config = HdConfig::emg_default();
/// assert_eq!(config.n_words, 313);
/// assert_eq!(config.channels, 4);
/// assert_eq!(config.levels, 22);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HdConfig {
    /// Hypervector width in packed 32-bit words (313 ≙ "10,000-D").
    pub n_words: usize,
    /// Number of input channels.
    pub channels: usize,
    /// Number of CIM quantization levels.
    pub levels: usize,
    /// N-gram size of the temporal encoder (1 = spatial only).
    pub ngram: usize,
    /// Samples per classification window.
    pub window: usize,
    /// Master seed for all item memories and tie-breaks.
    pub seed: u64,
}

impl HdConfig {
    /// The paper's EMG configuration: 10,000-D (313 words), 4 channels,
    /// 22 levels, N-gram of 1, and a 5-sample window (10 ms at 500 Hz).
    #[must_use]
    pub fn emg_default() -> Self {
        Self {
            n_words: 313,
            channels: 4,
            levels: 22,
            ngram: 1,
            window: 5,
            seed: 0x9d07_11d5_e821_a96c,
        }
    }

    /// Same configuration at a different dimensionality `dim`
    /// (rounded up to a whole number of words).
    #[must_use]
    pub fn with_dim(mut self, dim: usize) -> Self {
        self.n_words = words_for_dim(dim);
        self
    }

    /// Validates the internal consistency of the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] describing the first violated constraint.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.n_words == 0 {
            return Err(ConfigError::ZeroWords);
        }
        if self.channels == 0 {
            return Err(ConfigError::ZeroChannels);
        }
        if self.levels < 2 {
            return Err(ConfigError::TooFewLevels(self.levels));
        }
        if self.ngram == 0 {
            return Err(ConfigError::ZeroNgram);
        }
        if self.window < self.ngram {
            return Err(ConfigError::WindowShorterThanNgram {
                window: self.window,
                ngram: self.ngram,
            });
        }
        Ok(())
    }
}

/// Error returned by [`HdConfig::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// Hypervector width is zero.
    ZeroWords,
    /// No input channels.
    ZeroChannels,
    /// Fewer than two quantization levels.
    TooFewLevels(usize),
    /// N-gram size is zero.
    ZeroNgram,
    /// The classification window cannot hold a single N-gram.
    WindowShorterThanNgram {
        /// Window length in samples.
        window: usize,
        /// Configured N-gram size.
        ngram: usize,
    },
}

impl core::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::ZeroWords => write!(f, "hypervector width must be at least one word"),
            Self::ZeroChannels => write!(f, "at least one input channel is required"),
            Self::TooFewLevels(l) => write!(f, "need at least 2 quantization levels, got {l}"),
            Self::ZeroNgram => write!(f, "n-gram size must be at least 1"),
            Self::WindowShorterThanNgram { window, ngram } => {
                write!(f, "window of {window} samples cannot hold an {ngram}-gram")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// The end-to-end HD classifier (golden model).
///
/// # Examples
///
/// Train on two artificial "gestures" and classify a noisy repetition:
///
/// ```
/// use hdc::{HdClassifier, HdConfig};
///
/// let config = HdConfig { n_words: 64, channels: 4, levels: 22, ngram: 2,
///                         window: 5, seed: 1 };
/// let mut clf = HdClassifier::new(config, 2)?;
///
/// // Windows are `window × channels` ADC codes.
/// let rest = vec![[100u16, 120, 90, 110]; 5];
/// let fist = vec![[60_000u16, 52_000, 58_000, 61_000]; 5];
/// clf.train_window(0, &rest)?;
/// clf.train_window(1, &fist)?;
/// clf.finalize();
///
/// let noisy = vec![[59_000u16, 53_000, 57_500, 60_000]; 5];
/// assert_eq!(clf.predict(&noisy)?.class(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct HdClassifier {
    config: HdConfig,
    spatial: SpatialEncoder,
    temporal: TemporalEncoder,
    am: AssociativeMemory,
}

/// Error returned when a window does not match the configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum WindowError {
    /// Window sample count differs from `config.window`.
    WrongLength {
        /// Expected number of samples.
        expected: usize,
        /// Provided number of samples.
        got: usize,
    },
    /// Some sample has the wrong channel count.
    WrongChannels {
        /// Expected channel count.
        expected: usize,
        /// Provided channel count.
        got: usize,
        /// Index of the offending sample.
        at_sample: usize,
    },
    /// Class index out of range.
    BadClass {
        /// Number of classes in the model.
        n_classes: usize,
        /// Provided class index.
        got: usize,
    },
}

impl core::fmt::Display for WindowError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::WrongLength { expected, got } => {
                write!(f, "expected a window of {expected} samples, got {got}")
            }
            Self::WrongChannels {
                expected,
                got,
                at_sample,
            } => write!(
                f,
                "sample {at_sample} has {got} channels, expected {expected}"
            ),
            Self::BadClass { n_classes, got } => {
                write!(f, "class {got} out of range for {n_classes} classes")
            }
        }
    }
}

impl std::error::Error for WindowError {}

impl HdClassifier {
    /// Creates an untrained classifier for `n_classes` classes.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the configuration is inconsistent.
    ///
    /// # Panics
    ///
    /// Panics if `n_classes == 0`.
    pub fn new(config: HdConfig, n_classes: usize) -> Result<Self, ConfigError> {
        config.validate()?;
        assert!(n_classes > 0, "classifier needs at least one class");
        Ok(Self {
            config,
            spatial: SpatialEncoder::new(
                config.channels,
                config.levels,
                config.n_words,
                config.seed,
            ),
            temporal: TemporalEncoder::new(config.ngram),
            am: AssociativeMemory::new(n_classes, config.n_words, derive_seed(config.seed, 3)),
        })
    }

    /// The configuration this classifier was built with.
    #[must_use]
    pub fn config(&self) -> &HdConfig {
        &self.config
    }

    /// The spatial encoder (IM + CIM), e.g. for loading into the
    /// simulated platform.
    #[must_use]
    pub fn spatial(&self) -> &SpatialEncoder {
        &self.spatial
    }

    /// The associative memory.
    #[must_use]
    pub fn am(&self) -> &AssociativeMemory {
        &self.am
    }

    /// Mutable access to the associative memory (online learning,
    /// prototype export/import).
    pub fn am_mut(&mut self) -> &mut AssociativeMemory {
        &mut self.am
    }

    fn check_window<W: AsRef<[u16]>>(&self, window: &[W]) -> Result<(), WindowError> {
        if window.len() != self.config.window {
            return Err(WindowError::WrongLength {
                expected: self.config.window,
                got: window.len(),
            });
        }
        for (t, sample) in window.iter().enumerate() {
            if sample.as_ref().len() != self.config.channels {
                return Err(WindowError::WrongChannels {
                    expected: self.config.channels,
                    got: sample.as_ref().len(),
                    at_sample: t,
                });
            }
        }
        Ok(())
    }

    /// Encodes a classification window (`window × channels` ADC codes)
    /// into its query hypervector.
    ///
    /// # Errors
    ///
    /// Returns [`WindowError`] if the window shape does not match the
    /// configuration.
    pub fn encode_window<W: AsRef<[u16]>>(&self, window: &[W]) -> Result<BinaryHv, WindowError> {
        self.check_window(window)?;
        let spatials: Vec<BinaryHv> = window
            .iter()
            .map(|sample| self.spatial.encode_codes(sample.as_ref()))
            .collect();
        Ok(self.temporal.encode(&spatials))
    }

    /// Accumulates one training window for `class`.
    ///
    /// # Errors
    ///
    /// Returns [`WindowError`] on shape mismatch or bad class index.
    pub fn train_window<W: AsRef<[u16]>>(
        &mut self,
        class: usize,
        window: &[W],
    ) -> Result<(), WindowError> {
        if class >= self.am.n_classes() {
            return Err(WindowError::BadClass {
                n_classes: self.am.n_classes(),
                got: class,
            });
        }
        let query = self.encode_window(window)?;
        self.am.train(class, &query);
        Ok(())
    }

    /// Re-thresholds all class prototypes after training.
    pub fn finalize(&mut self) {
        self.am.finalize();
    }

    /// Classifies one window.
    ///
    /// # Errors
    ///
    /// Returns [`WindowError`] on shape mismatch.
    pub fn predict<W: AsRef<[u16]>>(&self, window: &[W]) -> Result<Classification, WindowError> {
        let query = self.encode_window(window)?;
        Ok(self.am.classify_finalized(&query))
    }

    /// Classifies one window and, if a supervision label is supplied,
    /// performs an online update of that class prototype.
    ///
    /// # Errors
    ///
    /// Returns [`WindowError`] on shape mismatch or bad label.
    pub fn predict_and_adapt<W: AsRef<[u16]>>(
        &mut self,
        window: &[W],
        label: Option<usize>,
    ) -> Result<Classification, WindowError> {
        let query = self.encode_window(window)?;
        let result = self.am.classify(&query);
        if let Some(class) = label {
            if class >= self.am.n_classes() {
                return Err(WindowError::BadClass {
                    n_classes: self.am.n_classes(),
                    got: class,
                });
            }
            self.am.update_online(class, &query);
        }
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> HdConfig {
        HdConfig {
            n_words: 64,
            channels: 4,
            levels: 22,
            ngram: 1,
            window: 5,
            seed: 42,
        }
    }

    fn gesture_window(base: [u16; 4], jitter: u16, t_seed: u64) -> Vec<[u16; 4]> {
        // Deterministic small jitter around a per-gesture activation level.
        (0..5)
            .map(|t| {
                let mut s = base;
                for (c, v) in s.iter_mut().enumerate() {
                    let j = ((t_seed * 31 + t as u64 * 7 + c as u64 * 13)
                        % u64::from(jitter.max(1))) as u16;
                    *v = v.saturating_add(j);
                }
                s
            })
            .collect()
    }

    #[test]
    fn trains_and_classifies_separable_gestures() {
        let mut clf = HdClassifier::new(config(), 3).unwrap();
        let bases = [
            [2_000u16, 3_000, 2_500, 1_500],
            [40_000, 8_000, 30_000, 5_000],
            [10_000, 50_000, 9_000, 45_000],
        ];
        for (class, base) in bases.iter().enumerate() {
            for rep in 0..6 {
                clf.train_window(class, &gesture_window(*base, 3000, rep))
                    .unwrap();
            }
        }
        clf.finalize();
        for (class, base) in bases.iter().enumerate() {
            for rep in 10..14 {
                let window = gesture_window(*base, 3000, rep);
                assert_eq!(clf.predict(&window).unwrap().class(), class);
            }
        }
    }

    #[test]
    fn config_validation_catches_inconsistencies() {
        assert_eq!(
            HdConfig {
                ngram: 7,
                window: 5,
                ..config()
            }
            .validate(),
            Err(ConfigError::WindowShorterThanNgram {
                window: 5,
                ngram: 7
            })
        );
        assert_eq!(
            HdConfig {
                levels: 1,
                ..config()
            }
            .validate(),
            Err(ConfigError::TooFewLevels(1))
        );
        assert_eq!(
            HdConfig {
                channels: 0,
                ..config()
            }
            .validate(),
            Err(ConfigError::ZeroChannels)
        );
        assert!(config().validate().is_ok());
    }

    #[test]
    fn window_shape_errors_are_reported() {
        let clf = HdClassifier::new(config(), 2).unwrap();
        let short: Vec<[u16; 4]> = vec![[0; 4]; 3];
        assert_eq!(
            clf.encode_window(&short).unwrap_err(),
            WindowError::WrongLength {
                expected: 5,
                got: 3
            }
        );
        let ragged: Vec<Vec<u16>> =
            vec![vec![0; 4], vec![0; 3], vec![0; 4], vec![0; 4], vec![0; 4]];
        assert_eq!(
            clf.encode_window(&ragged).unwrap_err(),
            WindowError::WrongChannels {
                expected: 4,
                got: 3,
                at_sample: 1
            }
        );
    }

    #[test]
    fn bad_class_rejected() {
        let mut clf = HdClassifier::new(config(), 2).unwrap();
        let window = vec![[0u16; 4]; 5];
        assert_eq!(
            clf.train_window(7, &window).unwrap_err(),
            WindowError::BadClass {
                n_classes: 2,
                got: 7
            }
        );
    }

    #[test]
    fn with_dim_rounds_up_to_words() {
        let c = config().with_dim(10_000);
        assert_eq!(c.n_words, 313);
        let c = config().with_dim(200);
        assert_eq!(c.n_words, 7);
    }

    #[test]
    fn encode_window_is_deterministic_across_instances() {
        let clf1 = HdClassifier::new(config(), 2).unwrap();
        let clf2 = HdClassifier::new(config(), 2).unwrap();
        let window = gesture_window([5_000, 9_000, 1_000, 60_000], 500, 3);
        assert_eq!(
            clf1.encode_window(&window).unwrap(),
            clf2.encode_window(&window).unwrap()
        );
    }

    #[test]
    fn ngram_config_changes_encoding() {
        let clf1 = HdClassifier::new(config(), 2).unwrap();
        let clf3 = HdClassifier::new(
            HdConfig {
                ngram: 3,
                ..config()
            },
            2,
        )
        .unwrap();
        let window = gesture_window([5_000, 9_000, 1_000, 60_000], 500, 3);
        let q1 = clf1.encode_window(&window).unwrap();
        let q3 = clf3.encode_window(&window).unwrap();
        assert!(q1.normalized_hamming(&q3) > 0.2, "N must affect the query");
    }

    #[test]
    fn predict_and_adapt_improves_on_drifted_data() {
        let mut clf = HdClassifier::new(config(), 2).unwrap();
        let base0 = [2_000u16, 3_000, 2_500, 1_500];
        let base1 = [55_000u16, 60_000, 52_000, 58_000];
        for rep in 0..6 {
            clf.train_window(0, &gesture_window(base0, 2000, rep))
                .unwrap();
            clf.train_window(1, &gesture_window(base1, 2000, rep))
                .unwrap();
        }
        clf.finalize();

        // Class 1 drifts to a lower amplitude regime.
        let drifted = [30_000u16, 36_000, 28_000, 33_000];
        let mut correct_before = 0;
        for rep in 0..5 {
            let w = gesture_window(drifted, 2000, 100 + rep);
            if clf.predict(&w).unwrap().class() == 1 {
                correct_before += 1;
            }
        }
        // Adapt online with labels.
        for rep in 0..10 {
            let w = gesture_window(drifted, 2000, 200 + rep);
            let _ = clf.predict_and_adapt(&w, Some(1)).unwrap();
        }
        let mut correct_after = 0;
        for rep in 0..5 {
            let w = gesture_window(drifted, 2000, 100 + rep);
            if clf.predict(&w).unwrap().class() == 1 {
                correct_after += 1;
            }
        }
        assert!(
            correct_after >= correct_before,
            "online adaptation should not hurt: {correct_before} -> {correct_after}"
        );
        assert!(correct_after >= 4, "adapted model should track the drift");
    }
}
