//! The seeded differential fuzzer: every kernel registered in
//! [`hdc::twins`] is run AVX2-vs-portable-vs-naive at adversarial
//! widths, the packed [`CounterBundler`] is checked against per-bit
//! counting, and the wire decoder is fed mutated frames.
//!
//! Determinism is the contract: a case is fully determined by its
//! `(family, seed)` pair, so any failure replays with
//! `pulp-hd-audit fuzz --family <F> --seed <N>`. The naive references
//! here are deliberately written per-bit (or as the obviously correct
//! word loop) and share no code with the kernels under test.
//!
//! Coverage is forced from the registry: [`families`] fails if a
//! [`KERNEL_TWINS`](hdc::twins::KERNEL_TWINS) entry has no fuzzer, so
//! registering a kernel without adding a differential family here
//! breaks the `audit fuzz` CI gate.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use hdc::hv64::CounterBundler;
use hdc::simd::Simd;
use hdc::twins::KERNEL_TWINS;
use hdc::{BinaryHv, Hv64};
use pulp_hd_core::backend::{CycleBreakdown, Verdict, VerdictSource};
use pulp_hd_serve::net::proto::{self, Request, Response};
use pulp_hd_serve::net::{ErrorCode, HealthReport, WireFault};
use pulp_hd_serve::ServerStats;

use crate::rng::XorShift64;

/// One failing case, replayable from its family and seed.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// The family that failed.
    pub family: &'static str,
    /// The failing seed.
    pub seed: u64,
    /// What went wrong (mismatch description or panic payload).
    pub message: String,
}

impl std::fmt::Display for FuzzFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{} seed {}] {}\n    replay: cargo run -p pulp-hd-audit -- fuzz --family {} --seed {}",
            self.family, self.seed, self.message, self.family, self.seed
        )
    }
}

/// Kernel families this module has a differential fuzzer for. Must
/// cover every [`KERNEL_TWINS`] entry — [`families`] enforces it.
const KERNEL_FAMILIES: &[&str] = &[
    "xor_into",
    "popcount",
    "hamming",
    "hamming_bounded",
    "hamming_threshold",
    "or_into",
    "maj3_into",
    "maj5_into",
    "maj5_tie_into",
    "ripple_majority_into",
    "csa_step",
    "counter_majority_into",
    "xor_rotated_into",
];

/// Non-kernel families: the packed training accumulator and the wire
/// decoder.
const EXTRA_FAMILIES: &[&str] = &["counter_bundler", "proto"];

/// All fuzz families, derived from the twin registry.
///
/// # Errors
///
/// Fails when a registered kernel has no fuzzer — the coverage-forcing
/// half of the registry contract.
pub fn families() -> Result<Vec<&'static str>, String> {
    let mut out = Vec::new();
    for twin in KERNEL_TWINS {
        if !KERNEL_FAMILIES.contains(&twin.kernel) {
            return Err(format!(
                "kernel `{}` is registered in crates/hdc/src/twins.rs but has no \
                 differential fuzzer — add a family for it in crates/audit/src/fuzz.rs",
                twin.kernel
            ));
        }
        out.push(twin.kernel);
    }
    out.extend_from_slice(EXTRA_FAMILIES);
    Ok(out)
}

/// Runs one `(family, seed)` case, converting panics into replayable
/// failures.
///
/// # Errors
///
/// A mismatch description or panic payload.
pub fn run_case(family: &'static str, seed: u64) -> Result<(), String> {
    let result = catch_unwind(AssertUnwindSafe(|| dispatch(family, seed)));
    match result {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("non-string panic payload");
            Err(format!("panicked: {msg}"))
        }
    }
}

/// Runs `n_seeds` consecutive seeds (starting at `base`) for each
/// family, collecting failures.
pub fn run(families: &[&'static str], n_seeds: u64, base: u64) -> Vec<FuzzFailure> {
    let mut failures = Vec::new();
    for &family in families {
        for seed in base..base + n_seeds {
            if let Err(message) = run_case(family, seed) {
                failures.push(FuzzFailure {
                    family,
                    seed,
                    message,
                });
            }
        }
    }
    failures
}

/// FNV-1a over the family name: decorrelates the per-family streams so
/// seed `N` exercises different shapes in each family.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn dispatch(family: &str, seed: u64) -> Result<(), String> {
    let mut rng = XorShift64::new(seed ^ fnv1a(family));
    match family {
        "xor_into" => fuzz_xor_into(&mut rng),
        "popcount" => fuzz_popcount(&mut rng),
        "hamming" => fuzz_hamming(&mut rng),
        "hamming_bounded" => fuzz_hamming_bounded(&mut rng),
        "hamming_threshold" => fuzz_hamming_threshold(&mut rng),
        "or_into" => fuzz_or_into(&mut rng),
        "maj3_into" => fuzz_maj3(&mut rng),
        "maj5_into" => fuzz_maj5(&mut rng),
        "maj5_tie_into" => fuzz_maj5_tie(&mut rng),
        "ripple_majority_into" => fuzz_ripple_majority(&mut rng),
        "csa_step" => fuzz_csa_step(&mut rng),
        "counter_majority_into" => fuzz_counter_majority(&mut rng),
        "xor_rotated_into" => fuzz_xor_rotated(&mut rng),
        "counter_bundler" => fuzz_counter_bundler(&mut rng),
        "proto" => fuzz_proto(&mut rng),
        other => Err(format!("unknown fuzz family `{other}`")),
    }
}

// ---------------------------------------------------------------------------
// Shared generators
// ---------------------------------------------------------------------------

/// The SIMD levels to run side by side: the portable reference always,
/// plus AVX2 when the running CPU has it (and the scalar override is
/// not forcing it off).
fn levels() -> Vec<Simd> {
    let mut v = vec![Simd::Portable];
    #[cfg(target_arch = "x86_64")]
    {
        if Simd::detect() == Simd::Avx2 {
            v.push(Simd::Avx2);
        }
    }
    v
}

/// Widths (in `u64` words) that sit on the kernels' unrolling and
/// tail-handling boundaries: the 4-word portable unroll, the 4-word
/// (256-bit) AVX2 step, and the 8-word scan block.
const WIDTHS: &[usize] = &[
    1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65, 127, 157, 257,
];

fn pick_width(rng: &mut XorShift64) -> usize {
    if rng.chance(3, 4) {
        *rng.pick(WIDTHS)
    } else {
        rng.range(1, 320)
    }
}

/// A word plane in one of the adversarial fill patterns.
fn gen_words(rng: &mut XorShift64, n: usize) -> Vec<u64> {
    match rng.below(6) {
        0 => vec![0u64; n],
        1 => vec![u64::MAX; n],
        2 => vec![0xAAAA_AAAA_AAAA_AAAA; n],
        3 => vec![0x5555_5555_5555_5555; n],
        // Sparse: a few set bits, adversarial for popcount-style sums.
        4 => {
            let mut v = vec![0u64; n];
            for _ in 0..rng.range(0, 4) {
                let i = rng.below((n * 64) as u64) as usize;
                v[i / 64] |= 1u64 << (i % 64);
            }
            v
        }
        _ => (0..n).map(|_| rng.next_u64()).collect(),
    }
}

fn bit(words: &[u64], i: usize) -> bool {
    (words[i / 64] >> (i % 64)) & 1 == 1
}

/// Per-bit counting majority: bit `i` of the result is set iff at
/// least `threshold` of `inputs` have bit `i` set.
fn naive_majority(inputs: &[&[u64]], threshold: u32, n_words: usize) -> Vec<u64> {
    let mut out = vec![0u64; n_words];
    for i in 0..n_words * 64 {
        let count = inputs.iter().filter(|w| bit(w, i)).count() as u32;
        if count >= threshold {
            out[i / 64] |= 1u64 << (i % 64);
        }
    }
    out
}

fn naive_hamming(a: &[u64], b: &[u64]) -> u32 {
    (0..a.len() * 64)
        .filter(|&i| bit(a, i) != bit(b, i))
        .count() as u32
}

fn check_eq<T: PartialEq + std::fmt::Debug>(
    what: &str,
    level: Simd,
    got: &T,
    want: &T,
) -> Result<(), String> {
    if got == want {
        Ok(())
    } else {
        Err(format!(
            "{what}: {} disagrees with naive reference (got {got:?}, want {want:?})",
            level.name()
        ))
    }
}

// ---------------------------------------------------------------------------
// Kernel families
// ---------------------------------------------------------------------------

fn fuzz_xor_into(rng: &mut XorShift64) -> Result<(), String> {
    let w = pick_width(rng);
    let a = gen_words(rng, w);
    let b = gen_words(rng, w);
    let want: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| x ^ y).collect();
    for level in levels() {
        let mut dst = a.clone();
        level.xor_into(&mut dst, &b);
        check_eq(&format!("xor_into w={w}"), level, &dst, &want)?;
    }
    Ok(())
}

fn fuzz_popcount(rng: &mut XorShift64) -> Result<(), String> {
    let w = pick_width(rng);
    let a = gen_words(rng, w);
    let want = (0..w * 64).filter(|&i| bit(&a, i)).count() as u32;
    for level in levels() {
        check_eq(
            &format!("popcount w={w}"),
            level,
            &level.popcount(&a),
            &want,
        )?;
    }
    Ok(())
}

fn fuzz_hamming(rng: &mut XorShift64) -> Result<(), String> {
    let w = pick_width(rng);
    let a = gen_words(rng, w);
    let b = gen_words(rng, w);
    let want = naive_hamming(&a, &b);
    for level in levels() {
        check_eq(
            &format!("hamming w={w}"),
            level,
            &level.hamming(&a, &b),
            &want,
        )?;
    }
    Ok(())
}

fn fuzz_hamming_bounded(rng: &mut XorShift64) -> Result<(), String> {
    let w = pick_width(rng);
    let a = gen_words(rng, w);
    let b = gen_words(rng, w);
    let full = naive_hamming(&a, &b);
    // Bounds around the true distance are the adversarial region (the
    // break decision flips on single-block granularity there).
    let bound = match rng.below(4) {
        0 => 0,
        1 => full.saturating_sub(rng.below(65) as u32),
        2 => full + rng.below(65) as u32,
        _ => rng.below((w as u64) * 64 + 1) as u32,
    };
    let reference = Simd::Portable.hamming_bounded(&a, &b, bound);
    for level in levels() {
        let d = level.hamming_bounded(&a, &b, bound);
        // Block boundaries are part of the kernel contract, so every
        // level reports the identical partial sum.
        check_eq(
            &format!("hamming_bounded w={w} bound={bound}"),
            level,
            &d,
            &reference,
        )?;
        if d > full || (d <= bound && d != full) || (d > bound && full <= bound) {
            return Err(format!(
                "hamming_bounded w={w} bound={bound}: {} returned {d}, true distance {full}",
                level.name()
            ));
        }
    }
    Ok(())
}

fn fuzz_hamming_threshold(rng: &mut XorShift64) -> Result<(), String> {
    let w = pick_width(rng);
    let a = gen_words(rng, w);
    let b = gen_words(rng, w);
    let full = naive_hamming(&a, &b);
    let max = (w as u64) * 64;
    let prune = match rng.below(3) {
        0 => full.saturating_sub(rng.below(65) as u32),
        1 => full + rng.below(65) as u32,
        _ => rng.below(max + 1) as u32,
    };
    // `accept == 0` disables early accept, making the scan exact up to
    // the prune bound — keep that shape common.
    let accept = if rng.chance(1, 3) {
        0
    } else {
        rng.below(max + 1) as u32
    };
    let reference = Simd::Portable.hamming_threshold(&a, &b, prune, accept);
    for level in levels() {
        let d = level.hamming_threshold(&a, &b, prune, accept);
        check_eq(
            &format!("hamming_threshold w={w} prune={prune} accept={accept}"),
            level,
            &d,
            &reference,
        )?;
        // `d` is always a prefix sum of block distances, so it can
        // never exceed the true distance; past the prune bound the true
        // distance is at least `d`; under it the scan either ran to the
        // end (exact) or early-accepted (true distance provably under
        // `accept`).
        let ok = d <= full && (d > prune || d == full || full <= accept);
        if !ok {
            return Err(format!(
                "hamming_threshold w={w} prune={prune} accept={accept}: {} returned {d}, \
                 true distance {full}",
                level.name()
            ));
        }
    }
    Ok(())
}

fn fuzz_or_into(rng: &mut XorShift64) -> Result<(), String> {
    let w = pick_width(rng);
    let a = gen_words(rng, w);
    let b = gen_words(rng, w);
    let want: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| x | y).collect();
    for level in levels() {
        let mut out = gen_words(rng, w);
        level.or_into(&a, &b, &mut out);
        check_eq(&format!("or_into w={w}"), level, &out, &want)?;
    }
    Ok(())
}

fn fuzz_maj3(rng: &mut XorShift64) -> Result<(), String> {
    let w = pick_width(rng);
    let xs: Vec<Vec<u64>> = (0..3).map(|_| gen_words(rng, w)).collect();
    let refs: Vec<&[u64]> = xs.iter().map(Vec::as_slice).collect();
    let want = naive_majority(&refs, 2, w);
    for level in levels() {
        let mut out = vec![0u64; w];
        level.maj3_into(&xs[0], &xs[1], &xs[2], &mut out);
        check_eq(&format!("maj3_into w={w}"), level, &out, &want)?;
    }
    Ok(())
}

fn fuzz_maj5(rng: &mut XorShift64) -> Result<(), String> {
    let w = pick_width(rng);
    let xs: Vec<Vec<u64>> = (0..5).map(|_| gen_words(rng, w)).collect();
    let refs: Vec<&[u64]> = xs.iter().map(Vec::as_slice).collect();
    let want = naive_majority(&refs, 3, w);
    for level in levels() {
        let mut out = vec![0u64; w];
        level.maj5_into(&xs[0], &xs[1], &xs[2], &xs[3], &xs[4], &mut out);
        check_eq(&format!("maj5_into w={w}"), level, &out, &want)?;
    }
    Ok(())
}

fn fuzz_maj5_tie(rng: &mut XorShift64) -> Result<(), String> {
    let w = pick_width(rng);
    let xs: Vec<Vec<u64>> = (0..4).map(|_| gen_words(rng, w)).collect();
    // The implied fifth input is the tie vector x0 ^ x1.
    let tie: Vec<u64> = xs[0].iter().zip(&xs[1]).map(|(&a, &b)| a ^ b).collect();
    let refs: Vec<&[u64]> = xs
        .iter()
        .map(Vec::as_slice)
        .chain([tie.as_slice()])
        .collect();
    let want = naive_majority(&refs, 3, w);
    for level in levels() {
        let mut out = vec![0u64; w];
        level.maj5_tie_into(&xs[0], &xs[1], &xs[2], &xs[3], &mut out);
        check_eq(&format!("maj5_tie_into w={w}"), level, &out, &want)?;
    }
    Ok(())
}

fn fuzz_ripple_majority(rng: &mut XorShift64) -> Result<(), String> {
    let w = pick_width(rng).min(160);
    let n = rng.range(1, 11);
    let even_tie = n >= 2 && rng.chance(1, 2);
    let votes = n + usize::from(even_tie);
    // Occasionally a threshold no count can reach (all-zero output).
    let threshold = rng.range(1, votes + 2) as u32;
    let xs: Vec<Vec<u64>> = (0..n).map(|_| gen_words(rng, w)).collect();
    let mut refs: Vec<&[u64]> = xs.iter().map(Vec::as_slice).collect();
    let tie: Vec<u64>;
    if even_tie {
        tie = xs[0].iter().zip(&xs[1]).map(|(&a, &b)| a ^ b).collect();
        refs.push(&tie);
    }
    let want = naive_majority(&refs, threshold, w);
    for level in levels() {
        let mut out = vec![0u64; w];
        level.ripple_majority_into(n, |i| xs[i].as_slice(), even_tie, threshold, &mut out);
        check_eq(
            &format!("ripple_majority_into w={w} n={n} tie={even_tie} t={threshold}"),
            level,
            &out,
            &want,
        )?;
    }
    Ok(())
}

fn fuzz_csa_step(rng: &mut XorShift64) -> Result<(), String> {
    let w = pick_width(rng);
    let plane = gen_words(rng, w);
    let carry = gen_words(rng, w);
    let want_plane: Vec<u64> = plane.iter().zip(&carry).map(|(&p, &c)| p ^ c).collect();
    let want_carry: Vec<u64> = plane.iter().zip(&carry).map(|(&p, &c)| p & c).collect();
    let want_pending = want_carry.iter().any(|&c| c != 0);
    for level in levels() {
        let mut p = plane.clone();
        let mut c = carry.clone();
        let pending = level.csa_step(&mut p, &mut c);
        check_eq(&format!("csa_step plane w={w}"), level, &p, &want_plane)?;
        check_eq(&format!("csa_step carry w={w}"), level, &c, &want_carry)?;
        check_eq(
            &format!("csa_step pending w={w}"),
            level,
            &pending,
            &want_pending,
        )?;
    }
    Ok(())
}

fn fuzz_counter_majority(rng: &mut XorShift64) -> Result<(), String> {
    let w = pick_width(rng).min(160);
    let n = rng.range(1, 300) as u32;
    // Generate per-component counts in 0..=n (the reachable range),
    // then slice them into bit planes — the inverse of what the
    // accumulator does, so the kernel sees realistic stacks.
    let counts: Vec<u32> = (0..w * 64)
        .map(|_| match rng.below(5) {
            0 => 0,
            1 => n,
            2 => n / 2,
            3 => (n / 2 + 1).min(n),
            _ => rng.below(u64::from(n) + 1) as u32,
        })
        .collect();
    let needed = (32 - n.leading_zeros()) as usize;
    // Sometimes present extra all-zero high planes; the contract says
    // absent high planes read as zero, so both shapes must agree.
    let n_planes = needed + rng.range(0, 2);
    let mut planes = vec![vec![0u64; w]; n_planes];
    for (i, &c) in counts.iter().enumerate() {
        for (p, plane) in planes.iter_mut().enumerate() {
            if (c >> p) & 1 == 1 {
                plane[i / 64] |= 1u64 << (i % 64);
            }
        }
    }
    let tie = gen_words(rng, w);
    let mut want = vec![0u64; w];
    for (i, &c) in counts.iter().enumerate() {
        let set = c > n / 2 || (n % 2 == 0 && c == n / 2 && bit(&tie, i));
        if set {
            want[i / 64] |= 1u64 << (i % 64);
        }
    }
    for level in levels() {
        let mut out = vec![0u64; w];
        level.counter_majority_into(|p| planes[p].as_slice(), n_planes, n, &tie, &mut out);
        check_eq(
            &format!("counter_majority_into w={w} n={n} planes={n_planes}"),
            level,
            &out,
            &want,
        )?;
    }
    Ok(())
}

fn fuzz_xor_rotated(rng: &mut XorShift64) -> Result<(), String> {
    // Dimensions off the word boundary exercise the tail-mask path.
    let dim = if rng.chance(1, 2) {
        *rng.pick(&[1usize, 3, 31, 32, 33, 63, 64, 65, 100, 157, 320, 1000, 2048])
    } else {
        rng.range(1, 2048)
    };
    let w = dim.div_ceil(64);
    let tail_mask = if dim % 64 == 0 {
        u64::MAX
    } else {
        (1u64 << (dim % 64)) - 1
    };
    let mut src = gen_words(rng, w);
    src[w - 1] &= tail_mask;
    let k = rng.below(2 * dim as u64 + 1) as usize;
    // Naive per-bit rotation: component i moves to (i + k) mod dim.
    let mut rotated = vec![0u64; w];
    for i in 0..dim {
        if bit(&src, i) {
            let j = (i + k) % dim;
            rotated[j / 64] |= 1u64 << (j % 64);
        }
    }
    let mut dst0 = gen_words(rng, w);
    dst0[w - 1] &= tail_mask;
    let want_xor: Vec<u64> = dst0.iter().zip(&rotated).map(|(&d, &r)| d ^ r).collect();
    for level in levels() {
        let mut out = vec![0u64; w];
        level.rotate_into_words(&mut out, &src, dim, k);
        check_eq(
            &format!("rotate_into_words dim={dim} k={k}"),
            level,
            &out,
            &rotated,
        )?;
        let mut dst = dst0.clone();
        level.xor_rotated_words(&mut dst, &src, dim, k);
        check_eq(
            &format!("xor_rotated_words dim={dim} k={k}"),
            level,
            &dst,
            &want_xor,
        )?;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// CounterBundler family
// ---------------------------------------------------------------------------

fn gen_hv(rng: &mut XorShift64, n_words32: usize) -> Hv64 {
    let words: Vec<u32> = (0..n_words32).map(|_| rng.next_u64() as u32).collect();
    Hv64::from_binary(&BinaryHv::from_words(words))
}

fn fuzz_counter_bundler(rng: &mut XorShift64) -> Result<(), String> {
    // Odd widths leave the top 32 bits of the last u64 word as padding;
    // the threshold must never set them.
    let n_words32 = *rng.pick(&[1usize, 2, 3, 5, 7, 9, 31, 157]);
    let m = rng.range(1, 24);
    let inputs: Vec<Hv64> = (0..m).map(|_| gen_hv(rng, n_words32)).collect();
    let tie = gen_hv(rng, n_words32);

    // Sequential accumulation.
    let mut seq = CounterBundler::new(n_words32);
    for hv in &inputs {
        seq.add(hv);
    }

    // Split-and-merge must match, including lopsided splits where the
    // two halves hold different numbers of significance planes.
    let split = rng.range(0, m);
    let mut left = CounterBundler::new(n_words32);
    for hv in &inputs[..split] {
        left.add(hv);
    }
    let mut right = CounterBundler::new(n_words32);
    for hv in &inputs[split..] {
        right.add(hv);
    }
    left.merge(&right);
    if left.len() != seq.len() || seq.len() != m as u32 {
        return Err(format!(
            "counter_bundler w32={n_words32} m={m} split={split}: merged count {} != {}",
            left.len(),
            seq.len()
        ));
    }

    let mut out_seq = Hv64::zeros(n_words32);
    seq.majority_seeded_into(&tie, &mut out_seq);
    let mut out_merged = Hv64::zeros(n_words32);
    left.majority_seeded_into(&tie, &mut out_merged);
    if out_seq.words() != out_merged.words() {
        return Err(format!(
            "counter_bundler w32={n_words32} m={m} split={split}: merged majority \
             differs from sequential"
        ));
    }

    // Naive per-component count against the packed threshold.
    let dim = n_words32 * 32;
    let mut want = vec![0u64; out_seq.words().len()];
    for i in 0..dim {
        let count = inputs.iter().filter(|hv| bit(hv.words(), i)).count();
        let set = 2 * count > m || (m % 2 == 0 && 2 * count == m && bit(tie.words(), i));
        if set {
            want[i / 64] |= 1u64 << (i % 64);
        }
    }
    if out_seq.words() != want.as_slice() {
        return Err(format!(
            "counter_bundler w32={n_words32} m={m}: majority differs from naive counts"
        ));
    }

    // clear() must fully reset: one re-added vector is its own majority.
    seq.clear();
    seq.add(&inputs[0]);
    let mut out_one = Hv64::zeros(n_words32);
    seq.majority_seeded_into(&tie, &mut out_one);
    if out_one.words() != inputs[0].words() {
        return Err(format!(
            "counter_bundler w32={n_words32}: cleared+re-added majority is not the input"
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Wire-decoder family
// ---------------------------------------------------------------------------

fn gen_window(rng: &mut XorShift64) -> Vec<Vec<u16>> {
    let samples = rng.range(0, 5);
    if samples == 0 {
        return Vec::new();
    }
    let channels = rng.range(1, 4);
    (0..samples)
        .map(|_| (0..channels).map(|_| rng.next_u64() as u16).collect())
        .collect()
}

fn gen_request(rng: &mut XorShift64) -> Request {
    match rng.below(4) {
        0 => Request::Classify {
            deadline_us: rng.next_u64() >> rng.below(64),
            window: gen_window(rng),
        },
        1 => Request::ClassifyBatch {
            deadline_us: rng.next_u64() >> rng.below(64),
            windows: (0..rng.range(0, 4)).map(|_| gen_window(rng)).collect(),
        },
        2 => Request::Stats,
        _ => Request::Health,
    }
}

fn gen_fault(rng: &mut XorShift64) -> WireFault {
    // INFALLIBLE is not needed here: audit is outside the lint's unwrap
    // scope, and 1..=9 are exactly the defined codes.
    let code = ErrorCode::from_u8(1 + rng.below(9) as u8).expect("codes 1..=9 are defined");
    let detail: String = (0..rng.range(0, 32))
        .map(|_| char::from(b'a' + (rng.below(26) as u8)))
        .collect();
    WireFault::new(code, detail)
}

fn gen_verdict(rng: &mut XorShift64) -> Verdict {
    Verdict {
        class: rng.below(1 << 16) as usize,
        distances: (0..rng.range(0, 6))
            .map(|_| rng.next_u64() as u32)
            .collect(),
        query: BinaryHv::from_words(
            (0..rng.range(1, 6))
                .map(|_| rng.next_u64() as u32)
                .collect(),
        ),
        cycles: if rng.chance(1, 2) {
            Some(CycleBreakdown {
                total: rng.next_u64(),
                map_encode: rng.next_u64(),
                am: rng.next_u64(),
            })
        } else {
            None
        },
        source: match rng.below(3) {
            0 => VerdictSource::Scan,
            1 => VerdictSource::EarlyAccept,
            _ => VerdictSource::CacheHit,
        },
    }
}

/// An exactly-representable non-NaN f64 (float fields must round-trip
/// bit-for-bit and compare equal).
fn gen_f64(rng: &mut XorShift64) -> f64 {
    rng.below(1 << 32) as f64 / 16.0
}

fn gen_stats(rng: &mut XorShift64) -> ServerStats {
    ServerStats {
        completed: rng.next_u64() >> 20,
        rejected: rng.next_u64() >> 20,
        batches: rng.next_u64() >> 20,
        mean_batch: gen_f64(rng),
        p50_us: rng.next_u64() >> 20,
        p95_us: rng.next_u64() >> 20,
        p99_us: rng.next_u64() >> 20,
        latency_max_us: rng.next_u64() >> 20,
        latency_mean_us: gen_f64(rng),
        batch_service_max_us: rng.next_u64() >> 20,
        batch_service_mean_us: gen_f64(rng),
        elapsed: Duration::from_nanos(rng.next_u64() >> 10),
        windows_per_sec: gen_f64(rng),
        deadline_expired: rng.next_u64() >> 20,
        retried_batches: rng.next_u64() >> 20,
        contained_panics: rng.next_u64() >> 20,
        shard_windows: (0..rng.range(0, 4)).map(|_| rng.next_u64()).collect(),
        shard_healthy: (0..rng.range(0, 4)).map(|_| rng.chance(1, 2)).collect(),
        cache_hits: rng.next_u64() >> 20,
        cache_misses: rng.next_u64() >> 20,
        cache_evictions: rng.next_u64() >> 20,
    }
}

fn gen_response(rng: &mut XorShift64) -> Response {
    match rng.below(5) {
        0 => Response::Verdict(gen_verdict(rng)),
        1 => Response::VerdictBatch(
            (0..rng.range(0, 4))
                .map(|_| {
                    if rng.chance(1, 2) {
                        Ok(gen_verdict(rng))
                    } else {
                        Err(gen_fault(rng))
                    }
                })
                .collect(),
        ),
        2 => Response::Stats(gen_stats(rng)),
        3 => Response::Health(HealthReport {
            serving: rng.chance(1, 2),
            shard_healthy: (0..rng.range(0, 4)).map(|_| rng.chance(1, 2)).collect(),
        }),
        _ => Response::Error(gen_fault(rng)),
    }
}

/// Decodes arbitrary bytes as a frame the way a server would: header
/// first, then the payload as both a request and a response. The only
/// failure mode is a panic — every byte soup must come back as
/// `Ok`/`Err`, never unwind.
fn decode_anything(bytes: &[u8]) {
    let Ok(header) = proto::decode_header(bytes, proto::DEFAULT_MAX_FRAME) else {
        return;
    };
    let payload = bytes.get(proto::HEADER_LEN..).unwrap_or(&[]);
    let payload = &payload[..payload.len().min(header.len as usize)];
    let _ = proto::decode_request(&header, payload);
    let _ = proto::decode_response(&header, payload);
}

fn fuzz_proto(rng: &mut XorShift64) -> Result<(), String> {
    match rng.below(3) {
        // Round-trip: encode → decode must reproduce the value.
        0 => {
            let id = rng.next_u64();
            let req = gen_request(rng);
            let bytes = proto::encode_request(id, &req);
            let header = proto::decode_header(&bytes, proto::DEFAULT_MAX_FRAME)
                .map_err(|e| format!("request header rejected: {e}"))?;
            if header.id != id {
                return Err(format!("request id mangled: {} != {id}", header.id));
            }
            let decoded = proto::decode_request(&header, &bytes[proto::HEADER_LEN..])
                .map_err(|e| format!("valid request rejected: {e}"))?;
            if decoded != req {
                return Err(format!(
                    "request round-trip mismatch: {decoded:?} != {req:?}"
                ));
            }
        }
        1 => {
            let id = rng.next_u64();
            let resp = gen_response(rng);
            let bytes = proto::encode_response(id, &resp);
            let header = proto::decode_header(&bytes, proto::DEFAULT_MAX_FRAME)
                .map_err(|e| format!("response header rejected: {e}"))?;
            let decoded = proto::decode_response(&header, &bytes[proto::HEADER_LEN..])
                .map_err(|e| format!("valid response rejected: {e}"))?;
            if decoded != resp {
                return Err(format!(
                    "response round-trip mismatch: {decoded:?} != {resp:?}"
                ));
            }
        }
        // Adversarial: mutate a valid frame and require decode totality.
        _ => {
            let id = rng.next_u64();
            let mut bytes = if rng.chance(1, 2) {
                proto::encode_request(id, &gen_request(rng))
            } else {
                proto::encode_response(id, &gen_response(rng))
            };
            match rng.below(3) {
                0 => {
                    bytes.truncate(rng.below(bytes.len() as u64 + 1) as usize);
                }
                1 => {
                    for _ in 0..rng.range(1, 8) {
                        if bytes.is_empty() {
                            break;
                        }
                        let i = rng.below(bytes.len() as u64) as usize;
                        bytes[i] ^= 1 << rng.below(8);
                    }
                }
                _ => {
                    bytes = (0..rng.range(0, 64))
                        .map(|_| rng.next_u64() as u8)
                        .collect();
                }
            }
            decode_anything(&bytes);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registered_kernel_has_a_family() {
        let fams = families().expect("registry fully covered");
        for twin in KERNEL_TWINS {
            assert!(fams.contains(&twin.kernel), "missing {}", twin.kernel);
        }
        assert!(fams.contains(&"counter_bundler"));
        assert!(fams.contains(&"proto"));
    }

    #[test]
    fn failures_are_deterministic_per_seed() {
        // Same (family, seed) twice must produce the same outcome —
        // the replay contract.
        for &family in &["hamming", "proto", "counter_bundler"] {
            for seed in 0..5 {
                let a = run_case(family, seed);
                let b = run_case(family, seed);
                assert_eq!(a, b, "{family} seed {seed} not deterministic");
            }
        }
    }
}
