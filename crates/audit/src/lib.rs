//! # `pulp-hd-audit` — repo-native correctness tooling
//!
//! Two gates over the workspace's trickiest surfaces:
//!
//! * [`lint`] — a source-level pass enforcing the invariants the unsafe
//!   SIMD kernels, the atomics-based telemetry/shutdown paths, and the
//!   panic-intolerant serving layer rely on (`// SAFETY:`,
//!   `// ORDERING:`, `// INFALLIBLE:` annotations, and the
//!   differential-twin registry in `crates/hdc/src/twins.rs`).
//! * [`fuzz`] — a seeded deterministic differential fuzzer running every
//!   registered kernel AVX2-vs-portable-vs-naive at adversarial widths,
//!   the packed counter bundler against per-bit counting, and the wire
//!   decoder against mutated frames. Failures replay from
//!   `(family, seed)` alone.
//!
//! Both run in CI via the `pulp-hd-audit` binary (`audit-lint` gate and
//! the chaos job's fuzz step); see the workspace README's "Correctness
//! tooling" section.

#![warn(missing_docs)]

pub mod fuzz;
pub mod lint;
pub mod rng;
