//! The repo-native lint pass: source-level enforcement of the
//! workspace's unsafe/atomics/panic invariants.
//!
//! This is deliberately *not* a general-purpose Rust linter. It is a
//! line-oriented scanner tuned to this repository's idiom (rustfmt'd
//! code, `//` comments, one statement per annotation site) that checks
//! the four invariants the unsafe SIMD + concurrency surface depends
//! on:
//!
//! 1. **`SAFETY`** — every `unsafe fn` / `unsafe {}` block /
//!    `unsafe impl` carries a `// SAFETY:` comment (an `unsafe fn` may
//!    instead document its contract with a rustdoc `# Safety` section).
//! 2. **`TWIN`** — every `#[target_feature]` function is registered in
//!    the differential-twin registry (`crates/hdc/src/twins.rs`),
//!    either as a kernel paired with a portable reference or as a
//!    helper reachable only through registered kernels.
//! 3. **`UNWRAP`** — no `.unwrap()` / `.expect(` in non-test code under
//!    `crates/serve/src` and `crates/core/src/backend`, except sites
//!    annotated `// INFALLIBLE:` with a proof sketch.
//! 4. **`ORDERING`** — every atomic write (`store` / `fetch_*` /
//!    `compare_exchange*` / `swap`) with an explicit
//!    [`Ordering`](core::sync::atomic::Ordering) sits within
//!    [`ORDERING_WINDOW`] lines of an `// ORDERING:` justification, and
//!    no named atomic is accessed with both `SeqCst` and `Relaxed`
//!    within one file (the mix is either a bug or two sites reasoning
//!    from different models — both worth failing CI over).
//!
//! Test code is exempt everywhere: `tests/` directories are skipped
//! outright, and `#[cfg(test)]` items are masked out by brace
//! tracking. The scanner strips comments and string literals before
//! matching, so prose about `unsafe` or `Ordering::` never trips a
//! rule.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::{Path, PathBuf};

/// How many lines above an atomic write an `// ORDERING:` comment is
/// accepted — one justification covers the small cluster of accesses
/// in a short function, which is the repo's annotation idiom.
pub const ORDERING_WINDOW: usize = 12;

/// Path (from the workspace root) of the differential-twin registry
/// the `TWIN` rule checks `#[target_feature]` functions against.
pub const TWIN_REGISTRY: &str = "crates/hdc/src/twins.rs";

/// The invariant a [`Violation`] breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// An unsafe site without a `// SAFETY:` justification.
    MissingSafety,
    /// A `#[target_feature]` function absent from the twin registry.
    UnregisteredKernel,
    /// A bare `.unwrap()` / `.expect(` in scoped non-test code.
    BareUnwrap,
    /// An atomic write with no `// ORDERING:` justification in range.
    UnjustifiedOrdering,
    /// One named atomic accessed with both `SeqCst` and `Relaxed`.
    MixedOrdering,
}

impl Rule {
    /// Stable short tag used in lint output.
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            Self::MissingSafety => "SAFETY",
            Self::UnregisteredKernel => "TWIN",
            Self::BareUnwrap => "UNWRAP",
            Self::UnjustifiedOrdering => "ORDERING",
            Self::MixedOrdering => "MIXED-ORDERING",
        }
    }
}

/// One broken invariant at one source location.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Violation {
    /// Path relative to the linted root.
    pub file: PathBuf,
    /// 1-based line of the offending site.
    pub line: usize,
    /// Which invariant broke.
    pub rule: Rule,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule.tag(),
            self.message
        )
    }
}

/// Lints every non-test source file under `root` and returns the
/// violations, sorted by path and line.
///
/// # Errors
///
/// Returns any I/O error from walking the tree or reading a file.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Violation>> {
    let registry = registry_names(root)?;
    let mut violations = Vec::new();
    for file in source_files(root)? {
        let text = std::fs::read_to_string(&file)?;
        let rel = file.strip_prefix(root).unwrap_or(&file).to_path_buf();
        lint_file(&rel, &text, &registry, &mut violations);
    }
    violations.sort();
    Ok(violations)
}

/// Every `.rs` file under `root` that is production source: inside a
/// `src/` or `examples/` tree, not under `target/`, and not inside a
/// `tests/` (or fixture) directory.
fn source_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if entry.file_type()?.is_dir() {
                if matches!(
                    name.as_ref(),
                    "target" | "tests" | "fixtures" | ".git" | ".github"
                ) {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                let in_source_tree = path.components().any(|c| {
                    matches!(
                        c.as_os_str().to_string_lossy().as_ref(),
                        "src" | "examples" | "benches"
                    )
                });
                if in_source_tree {
                    out.push(path);
                }
            }
        }
    }
    out.sort();
    Ok(out)
}

/// The set of kernel/helper names registered in [`TWIN_REGISTRY`]:
/// every string literal in the registry file, reduced to its last
/// `::` segment. Empty when the registry does not exist (fixture
/// trees), in which case every `#[target_feature]` fn is a violation.
fn registry_names(root: &Path) -> std::io::Result<BTreeSet<String>> {
    let path = root.join(TWIN_REGISTRY);
    let mut names = BTreeSet::new();
    if let Ok(text) = std::fs::read_to_string(path) {
        for line in text.lines() {
            let mut rest = line;
            while let Some(start) = rest.find('"') {
                let tail = &rest[start + 1..];
                let Some(end) = tail.find('"') else { break };
                let literal = &tail[..end];
                let name = literal.rsplit("::").next().unwrap_or(literal);
                if !name.is_empty() {
                    names.insert(name.to_string());
                }
                rest = &tail[end + 1..];
            }
        }
    }
    Ok(names)
}

/// Whether the `UNWRAP` rule applies to this file: the serving layer
/// and the execution-backend layer, where a stray panic kills a
/// session or a connection instead of a test.
fn unwrap_scoped(rel: &Path) -> bool {
    let p = rel.to_string_lossy().replace('\\', "/");
    p.contains("crates/serve/src") || p.contains("crates/core/src/backend")
}

/// One source line, pre-processed for matching.
struct Line {
    /// Raw text (used for comment-content searches).
    raw: String,
    /// Code with comments and string/char-literal contents blanked.
    code: String,
    /// Inside a `#[cfg(test)]` item.
    test: bool,
}

/// Strips `//` comments, blanks string/char-literal contents, and
/// tracks `/* */` block comments across lines, so rule matching never
/// fires on prose or message text.
fn strip_code(lines: &[&str]) -> Vec<String> {
    let mut out = Vec::with_capacity(lines.len());
    let mut in_block_comment = false;
    for line in lines {
        let bytes = line.as_bytes();
        let mut code = String::with_capacity(line.len());
        let mut i = 0;
        while i < bytes.len() {
            if in_block_comment {
                if bytes[i..].starts_with(b"*/") {
                    in_block_comment = false;
                    i += 2;
                } else {
                    i += 1;
                }
                continue;
            }
            match bytes[i] {
                b'/' if bytes[i..].starts_with(b"//") => break,
                b'/' if bytes[i..].starts_with(b"/*") => {
                    in_block_comment = true;
                    i += 2;
                }
                b'"' => {
                    code.push('"');
                    i += 1;
                    while i < bytes.len() {
                        match bytes[i] {
                            b'\\' => i += 2,
                            b'"' => {
                                i += 1;
                                break;
                            }
                            _ => i += 1,
                        }
                    }
                    code.push('"');
                }
                b'\'' => {
                    // A char literal closes within a handful of bytes
                    // (`'x'`, `'\n'`, `'\u{1F600}'`); anything longer is
                    // a lifetime and is kept as-is.
                    let close = bytes[i + 1..]
                        .iter()
                        .take(12)
                        .position(|&b| b == b'\'')
                        .filter(|&off| off > 0 || bytes.get(i + 1) != Some(&b'\\'));
                    if let Some(off) = close {
                        code.push('\'');
                        code.push('\'');
                        i += off + 2;
                    } else {
                        code.push('\'');
                        i += 1;
                    }
                }
                b => {
                    code.push(b as char);
                    i += 1;
                }
            }
        }
        out.push(code);
    }
    out
}

/// Marks the lines belonging to `#[cfg(test)]` items by walking braces
/// (on stripped code, so braces in strings don't confuse the depth).
fn test_mask(code: &[String]) -> Vec<bool> {
    let mut mask = vec![false; code.len()];
    let mut i = 0;
    while i < code.len() {
        let trimmed = code[i].trim();
        if trimmed.starts_with("#[cfg(test)]") || trimmed.starts_with("#[cfg(all(test") {
            // Everything from the attribute to the close of the item's
            // brace block is test code.
            let mut depth = 0i32;
            let mut opened = false;
            let mut j = i;
            while j < code.len() {
                mask[j] = true;
                for b in code[j].bytes() {
                    match b {
                        b'{' => {
                            depth += 1;
                            opened = true;
                        }
                        b'}' => depth -= 1,
                        _ => {}
                    }
                }
                if opened && depth <= 0 {
                    break;
                }
                // An item that ends without braces (`#[cfg(test)] use …;`).
                if !opened && code[j].trim_end().ends_with(';') {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    mask
}

/// Whether a raw line is part of a comment/attribute block (the lines
/// a justification comment may be separated from its site by).
fn is_comment_or_attr(raw: &str) -> bool {
    let t = raw.trim_start();
    t.starts_with("//") || t.starts_with("#[") || t.starts_with("#!")
}

/// Searches the contiguous comment/attribute block immediately above
/// `idx` (and `idx`'s own raw line) for `needle`.
fn justified_above(lines: &[Line], idx: usize, needle: &str) -> bool {
    if lines[idx].raw.contains(needle) {
        return true;
    }
    let mut j = idx;
    while j > 0 {
        j -= 1;
        if !is_comment_or_attr(&lines[j].raw) {
            break;
        }
        if lines[j].raw.contains(needle) {
            return true;
        }
    }
    false
}

/// Whether `code` contains `word` as a standalone token (not a
/// substring of a longer identifier).
fn has_word(code: &str, word: &str) -> bool {
    let mut search = code;
    while let Some(pos) = search.find(word) {
        let before_ok = search[..pos]
            .chars()
            .next_back()
            .is_none_or(|c| !c.is_alphanumeric() && c != '_');
        let after = &search[pos + word.len()..];
        let after_ok = after
            .chars()
            .next()
            .is_none_or(|c| !c.is_alphanumeric() && c != '_');
        if before_ok && after_ok {
            return true;
        }
        search = &search[pos + word.len()..];
    }
    false
}

/// Atomic write methods that take an `Ordering` and therefore need an
/// `// ORDERING:` justification. Loads are exempt from the comment
/// requirement but still feed the mixed-ordering rule.
const ATOMIC_WRITES: &[&str] = &[
    ".store(",
    ".fetch_add(",
    ".fetch_sub(",
    ".fetch_and(",
    ".fetch_or(",
    ".fetch_xor(",
    ".fetch_max(",
    ".fetch_min(",
    ".fetch_update(",
    ".compare_exchange(",
    ".compare_exchange_weak(",
    ".swap(",
];

/// Extracts the receiver identifier of an atomic access: the last
/// `ident` before `.method(` at byte offset `at`.
fn receiver_name(code: &str, at: usize) -> Option<String> {
    let head = &code[..at];
    let end = head.len();
    let start = head
        .rfind(|c: char| !c.is_alphanumeric() && c != '_')
        .map_or(0, |p| p + 1);
    if start == end {
        None
    } else {
        Some(head[start..end].to_string())
    }
}

/// Orderings named by the atomic call starting at `idx`. A call whose
/// line already names an `Ordering::` is complete there; only when the
/// call is rustfmt-wrapped (no ordering on the first line) are up to 3
/// continuation lines joined — never past the first one that names an
/// ordering, so adjacent calls don't bleed into each other.
fn orderings_near(lines: &[Line], idx: usize) -> Vec<&'static str> {
    let mut joined = String::new();
    for line in lines.iter().skip(idx).take(4) {
        let had_ordering = line.code.contains("Ordering::");
        joined.push_str(&line.code);
        joined.push(' ');
        if had_ordering {
            break;
        }
    }
    let mut out = Vec::new();
    for name in ["Relaxed", "SeqCst", "AcqRel", "Acquire", "Release"] {
        if joined.contains(&format!("Ordering::{name}")) {
            out.push(name);
        }
    }
    out
}

/// Lints one file, appending violations.
fn lint_file(rel: &Path, text: &str, registry: &BTreeSet<String>, out: &mut Vec<Violation>) {
    let raw_lines: Vec<&str> = text.lines().collect();
    let code_lines = strip_code(&raw_lines);
    let mask = test_mask(&code_lines);
    let lines: Vec<Line> = raw_lines
        .iter()
        .zip(code_lines)
        .zip(&mask)
        .map(|((raw, code), &test)| Line {
            raw: (*raw).to_string(),
            code,
            test,
        })
        .collect();

    let scoped_unwrap = unwrap_scoped(rel);
    // name -> (orderings used, first line seen)
    let mut atomics: BTreeMap<String, (BTreeSet<&'static str>, usize)> = BTreeMap::new();

    for (idx, line) in lines.iter().enumerate() {
        if line.test {
            continue;
        }
        let code = &line.code;
        let trimmed = code.trim_start();
        let is_attr = trimmed.starts_with("#[") || trimmed.starts_with("#!");

        // Rule 1: SAFETY.
        if !is_attr && has_word(code, "unsafe") {
            let (form, accepts_safety_doc) = if code.contains("unsafe fn") {
                ("unsafe fn", true)
            } else if code.contains("unsafe impl") {
                ("unsafe impl", false)
            } else {
                ("unsafe block", false)
            };
            let ok = justified_above(&lines, idx, "SAFETY:")
                || (accepts_safety_doc && justified_above(&lines, idx, "# Safety"));
            if !ok {
                out.push(Violation {
                    file: rel.to_path_buf(),
                    line: idx + 1,
                    rule: Rule::MissingSafety,
                    message: format!("{form} without a `// SAFETY:` justification"),
                });
            }
        }

        // Rule 2: TWIN registry.
        if trimmed.starts_with("#[target_feature") {
            // The fn declaration follows within a few lines (more
            // attributes and comments may sit in between).
            let mut name = None;
            for next in lines.iter().skip(idx + 1).take(8) {
                if let Some(pos) = next.code.find("fn ") {
                    let tail = &next.code[pos + 3..];
                    let end = tail
                        .find(|c: char| !c.is_alphanumeric() && c != '_')
                        .unwrap_or(tail.len());
                    name = Some(tail[..end].to_string());
                    break;
                }
            }
            if let Some(name) = name {
                if !registry.contains(&name) {
                    out.push(Violation {
                        file: rel.to_path_buf(),
                        line: idx + 1,
                        rule: Rule::UnregisteredKernel,
                        message: format!(
                            "#[target_feature] fn `{name}` is not registered in {TWIN_REGISTRY} \
                             (add it to KERNEL_TWINS with a portable twin, or to KERNEL_HELPERS)"
                        ),
                    });
                }
            }
        }

        // Rule 3: UNWRAP (scoped).
        if scoped_unwrap
            && (code.contains(".unwrap()") || code.contains(".expect("))
            && !justified_above(&lines, idx, "INFALLIBLE:")
        {
            out.push(Violation {
                file: rel.to_path_buf(),
                line: idx + 1,
                rule: Rule::BareUnwrap,
                message: "bare unwrap()/expect() in serving/backend code without an \
                          `// INFALLIBLE:` justification"
                    .to_string(),
            });
        }

        // Rule 4: ORDERING.
        let is_write = ATOMIC_WRITES.iter().any(|m| code.contains(m));
        let is_load = code.contains(".load(");
        if is_write || is_load {
            let near = orderings_near(&lines, idx);
            if !near.is_empty() {
                // Track every named atomic's orderings for the mixed
                // rule.
                for method in ATOMIC_WRITES.iter().copied().chain([".load("]) {
                    if let Some(pos) = code.find(method) {
                        if let Some(name) = receiver_name(code, pos) {
                            let entry = atomics
                                .entry(name)
                                .or_insert_with(|| (BTreeSet::new(), idx + 1));
                            entry.0.extend(near.iter().copied());
                        }
                    }
                }
                if is_write {
                    let justified = lines[idx.saturating_sub(ORDERING_WINDOW)..=idx]
                        .iter()
                        .any(|l| l.raw.contains("ORDERING:"));
                    if !justified {
                        out.push(Violation {
                            file: rel.to_path_buf(),
                            line: idx + 1,
                            rule: Rule::UnjustifiedOrdering,
                            message: format!(
                                "atomic write with Ordering::{} but no `// ORDERING:` \
                                 justification within {ORDERING_WINDOW} lines",
                                near.join("/")
                            ),
                        });
                    }
                }
            }
        }
    }

    // Mixed-ordering rule: SeqCst and Relaxed on the same named atomic
    // within one file is either a bug or two sites reasoning from
    // different memory models.
    for (name, (orderings, first_line)) in atomics {
        if orderings.contains("SeqCst") && orderings.contains("Relaxed") {
            out.push(Violation {
                file: rel.to_path_buf(),
                line: first_line,
                rule: Rule::MixedOrdering,
                message: format!(
                    "atomic `{name}` is accessed with both SeqCst and Relaxed in this file — \
                     pick one model and document it"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_str(rel: &str, text: &str) -> Vec<Violation> {
        let mut out = Vec::new();
        lint_file(Path::new(rel), text, &BTreeSet::new(), &mut out);
        out
    }

    #[test]
    fn strings_and_comments_never_trip_rules() {
        let src = r#"
fn f() {
    let _ = "unsafe { } .unwrap() Ordering::Relaxed store(";
    // unsafe prose about .unwrap() and Ordering::SeqCst
}
"#;
        assert!(lint_str("crates/serve/src/x.rs", src).is_empty());
    }

    #[test]
    fn cfg_test_items_are_exempt() {
        let src = r#"
#[cfg(test)]
mod tests {
    fn f(v: Option<u8>) -> u8 {
        unsafe { core::hint::unreachable_unchecked() };
        v.unwrap()
    }
}
"#;
        assert!(lint_str("crates/serve/src/x.rs", src).is_empty());
    }

    #[test]
    fn safety_comment_forms_are_accepted() {
        let clean = r#"
/// Docs.
///
/// # Safety
///
/// Caller promises things.
unsafe fn contract() {}

fn f() {
    // SAFETY: the slice is non-empty by construction.
    let _ = unsafe { contract() };
}
"#;
        assert!(lint_str("crates/hdc/src/x.rs", clean).is_empty());
        let dirty = "fn f() {\n    let _ = unsafe { g() };\n}\n";
        let v = lint_str("crates/hdc/src/x.rs", dirty);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::MissingSafety);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn unwrap_rule_is_path_scoped() {
        let src = "fn f(v: Option<u8>) -> u8 {\n    v.unwrap()\n}\n";
        assert!(lint_str("crates/hdc/src/x.rs", src).is_empty());
        let v = lint_str("crates/core/src/backend/x.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::BareUnwrap);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn ordering_write_needs_justification_and_loads_do_not() {
        let src = r#"
use std::sync::atomic::{AtomicU64, Ordering};
static C: AtomicU64 = AtomicU64::new(0);
fn bump() {
    C.fetch_add(1, Ordering::Relaxed);
}
fn read() -> u64 {
    C.load(Ordering::Relaxed)
}
"#;
        let v = lint_str("crates/serve/src/x.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::UnjustifiedOrdering);
        assert_eq!(v[0].line, 5);
    }

    #[test]
    fn mixed_seqcst_relaxed_is_flagged_even_when_justified() {
        let src = r#"
use std::sync::atomic::{AtomicBool, Ordering};
static F: AtomicBool = AtomicBool::new(false);
fn set() {
    // ORDERING: documented.
    F.store(true, Ordering::SeqCst);
}
fn peek() -> bool {
    F.load(Ordering::Relaxed)
}
"#;
        let v = lint_str("crates/serve/src/x.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::MixedOrdering);
    }
}
