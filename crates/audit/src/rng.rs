//! The fuzzer's deterministic generator: xorshift64* seeded per test
//! case, so every failure replays from its seed alone.
//!
//! This is deliberately independent of `hdc::rng` (the model's
//! generators): the fuzzer must not share state or structure with the
//! code under test, and its stream only needs to be fast, well-mixed,
//! and stable across platforms.

/// A xorshift64* generator. Deterministic, platform-independent, and
/// never the zero state (seeds are remixed through a splitmix64 step).
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// A generator for `seed` (any value, including 0).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        // Splitmix64 finalizer: decorrelates consecutive seeds and maps
        // 0 away from the forbidden zero state.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        Self {
            state: if z == 0 { 0x9E37_79B9_7F4A_7C15 } else { z },
        }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A value in `0..n` (`n > 0`), bias-free enough for fuzzing.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift range reduction (Lemire); the slight bias at
        // huge `n` is irrelevant for test-case generation.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// A `usize` in `lo..=hi`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        lo + self.below((hi - lo + 1) as u64) as usize
    }

    /// One element of `choices`.
    pub fn pick<'a, T>(&mut self, choices: &'a [T]) -> &'a T {
        &choices[self.below(choices.len() as u64) as usize]
    }

    /// `true` with probability `num / den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = XorShift64::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = XorShift64::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c = XorShift64::new(43).next_u64();
        assert_ne!(a[0], c);
    }

    #[test]
    fn zero_seed_is_not_a_fixed_point() {
        let mut r = XorShift64::new(0);
        let x = r.next_u64();
        assert_ne!(x, 0);
        assert_ne!(x, r.next_u64());
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = XorShift64::new(7);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
            let v = r.range(3, 9);
            assert!((3..=9).contains(&v));
        }
    }
}
