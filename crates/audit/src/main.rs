//! The `pulp-hd-audit` CLI: `lint` and `fuzz` subcommands, both exit
//! non-zero on any finding so they work as CI gates.

use std::path::PathBuf;
use std::process::ExitCode;

use pulp_hd_audit::{fuzz, lint};

const USAGE: &str = "\
pulp-hd-audit — repo-native correctness gates

USAGE:
    pulp-hd-audit lint [--root <dir>]
    pulp-hd-audit fuzz [--seeds <n>] [--seed <s>] [--family <name>]

SUBCOMMANDS:
    lint    Lint the workspace sources for missing SAFETY / ORDERING /
            INFALLIBLE justifications, unregistered #[target_feature]
            kernels, and mixed SeqCst/Relaxed atomics.
    fuzz    Run the seeded differential fuzzer. By default every family
            runs <n> seeds (default 1000). --seed replays exactly one
            seed (use with --family to reproduce a reported failure).
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(&args[1..]),
        Some("fuzz") => run_fuzz(&args[1..]),
        _ => {
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Reads `--flag value` from `args`, returning the value.
fn flag_value(args: &[String], flag: &str) -> Result<Option<String>, String> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == flag {
            return match it.next() {
                Some(v) => Ok(Some(v.clone())),
                None => Err(format!("{flag} needs a value")),
            };
        }
    }
    Ok(None)
}

fn workspace_root(args: &[String]) -> Result<PathBuf, String> {
    if let Some(root) = flag_value(args, "--root")? {
        return Ok(PathBuf::from(root));
    }
    // Default to the workspace this binary was built from; running from
    // a checkout, that is the repo root.
    Ok(PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."))
}

fn run_lint(args: &[String]) -> ExitCode {
    let root = match workspace_root(args) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    match lint::lint_workspace(&root) {
        Ok(violations) if violations.is_empty() => {
            println!("audit lint: 0 violations");
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                println!("{v}");
            }
            println!("audit lint: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("error: lint failed: {e}");
            ExitCode::from(2)
        }
    }
}

fn run_fuzz(args: &[String]) -> ExitCode {
    let seeds = match flag_value(args, "--seeds").and_then(|v| {
        v.map_or(Ok(1000), |s| {
            s.parse::<u64>().map_err(|_| format!("bad --seeds: {s}"))
        })
    }) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let replay_seed = match flag_value(args, "--seed").and_then(|v| {
        v.map(|s| s.parse::<u64>().map_err(|_| format!("bad --seed: {s}")))
            .transpose()
    }) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let only = match flag_value(args, "--family") {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    let all = match fuzz::families() {
        Ok(f) => f,
        Err(e) => {
            // A registered kernel without a fuzzer is itself a gate
            // failure — coverage is part of the registry contract.
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let selected: Vec<&'static str> = match &only {
        Some(name) => {
            let Some(&f) = all.iter().find(|&&f| f == name.as_str()) else {
                eprintln!(
                    "error: unknown family `{name}` (families: {})",
                    all.join(", ")
                );
                return ExitCode::from(2);
            };
            vec![f]
        }
        None => all,
    };

    let (base, n_seeds) = match replay_seed {
        Some(s) => (s, 1),
        None => (0, seeds),
    };
    let failures = fuzz::run(&selected, n_seeds, base);
    let cases = n_seeds * selected.len() as u64;
    if failures.is_empty() {
        println!(
            "audit fuzz: {cases} case(s) across {} family(ies), 0 failures",
            selected.len()
        );
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            println!("{f}");
        }
        println!(
            "audit fuzz: {} failure(s) in {cases} case(s)",
            failures.len()
        );
        ExitCode::FAILURE
    }
}
