//! The lint's contract, pinned to fixture trees: every rule fires at
//! the exact file/line it should, and a fully annotated tree is clean.

use std::path::{Path, PathBuf};

use pulp_hd_audit::lint::{lint_workspace, Rule};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

#[test]
fn violations_tree_fires_every_rule_at_the_right_span() {
    let violations = lint_workspace(&fixture("violations")).expect("fixture tree readable");
    let got: Vec<(String, usize, Rule)> = violations
        .iter()
        .map(|v| (v.file.to_string_lossy().replace('\\', "/"), v.line, v.rule))
        .collect();
    let want = vec![
        (
            "crates/hdc/src/kernels.rs".to_string(),
            5,
            Rule::UnregisteredKernel,
        ),
        (
            "crates/hdc/src/kernels.rs".to_string(),
            6,
            Rule::MissingSafety,
        ),
        (
            "crates/hdc/src/kernels.rs".to_string(),
            13,
            Rule::MissingSafety,
        ),
        (
            "crates/serve/src/handler.rs".to_string(),
            8,
            Rule::BareUnwrap,
        ),
        (
            "crates/serve/src/handler.rs".to_string(),
            12,
            Rule::UnjustifiedOrdering,
        ),
        (
            "crates/serve/src/handler.rs".to_string(),
            17,
            Rule::MixedOrdering,
        ),
    ];
    assert_eq!(got, want, "full violation list: {violations:#?}");
}

#[test]
fn violations_render_with_rule_tags() {
    let violations = lint_workspace(&fixture("violations")).expect("fixture tree readable");
    let rendered: Vec<String> = violations.iter().map(ToString::to_string).collect();
    for tag in [
        "[TWIN]",
        "[SAFETY]",
        "[UNWRAP]",
        "[ORDERING]",
        "[MIXED-ORDERING]",
    ] {
        assert!(
            rendered.iter().any(|r| r.contains(tag)),
            "no violation rendered with {tag}: {rendered:#?}"
        );
    }
}

#[test]
fn test_code_is_exempt_from_unwrap() {
    let violations = lint_workspace(&fixture("violations")).expect("fixture tree readable");
    assert!(
        !violations
            .iter()
            .any(|v| v.rule == Rule::BareUnwrap && v.line > 20),
        "the #[cfg(test)] unwrap in handler.rs must not fire: {violations:#?}"
    );
}

#[test]
fn clean_tree_reports_zero() {
    let violations = lint_workspace(&fixture("clean")).expect("fixture tree readable");
    assert!(violations.is_empty(), "expected clean: {violations:#?}");
}
