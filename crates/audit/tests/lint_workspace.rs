//! The tentpole gate: the real workspace carries zero lint violations.
//! This is the same check CI runs via `pulp-hd-audit lint`.

use std::path::Path;

use pulp_hd_audit::lint::lint_workspace;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists");
    let violations = lint_workspace(&root).expect("workspace readable");
    assert!(
        violations.is_empty(),
        "run `cargo run -p pulp-hd-audit -- lint` and annotate or fix:\n{}",
        violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
