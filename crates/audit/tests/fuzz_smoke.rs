//! A quick differential pass over every fuzz family, plus the
//! determinism guarantee that makes `--seed` replay trustworthy.

use pulp_hd_audit::fuzz::{families, run, run_case};

const SMOKE_SEEDS: u64 = 25;

#[test]
fn every_family_passes_a_smoke_run() {
    let families = families().expect("every registered kernel has a fuzzer");
    let failures = run(&families, SMOKE_SEEDS, 0);
    assert!(
        failures.is_empty(),
        "{}",
        failures
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn case_outcomes_are_deterministic() {
    for family in families().expect("families resolve") {
        for seed in [0, 1, 0xDEAD_BEEF] {
            let a = run_case(family, seed);
            let b = run_case(family, seed);
            assert_eq!(a, b, "family {family} seed {seed} not replayable");
        }
    }
}
