//! Fixture: annotated twins of the violations-tree constructs — the
//! whole tree must report zero violations.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn first(input: Option<u32>) -> u32 {
    // INFALLIBLE: callers validate the option before handing it over.
    input.unwrap()
}

pub fn bump(counter: &AtomicU64) {
    // ORDERING: Relaxed — a telemetry counter with no dependent reads.
    counter.fetch_add(1, Ordering::Relaxed);
}

pub fn consistent(flag: &AtomicU64) -> u64 {
    // ORDERING: SeqCst on both sides — a flag handshake.
    flag.store(1, Ordering::SeqCst);
    flag.load(Ordering::SeqCst)
}
