//! Fixture: the same constructs as the violations tree, each carrying
//! the justification the lint asks for — the whole tree must report
//! zero violations.

/// Inverts every word.
///
/// # Safety
///
/// Requires AVX2.
#[target_feature(enable = "avx2")]
pub unsafe fn good_kernel(dst: &mut [u64]) {
    for w in dst.iter_mut() {
        *w = !*w;
    }
}

pub fn caller(dst: &mut [u64]) {
    // SAFETY: the build gates this call behind an AVX2 check.
    unsafe { good_kernel(dst) }
}
