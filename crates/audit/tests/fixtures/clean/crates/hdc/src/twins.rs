//! Fixture twin registry: mirrors the shape of the real
//! `crates/hdc/src/twins.rs` just enough for `registry_names` to find
//! the registered kernel below.

pub const KERNEL_TWINS: &[(&str, &str)] = &[("good_kernel", "portable::good_kernel")];
