//! Fixture: the SAFETY and TWIN rules must each fire exactly where
//! `lint_fixtures.rs` says they do. Never compiled — line numbers are
//! part of the test contract; edit both together.

#[target_feature(enable = "avx2")]
pub unsafe fn rogue_kernel(dst: &mut [u64]) {
    for w in dst.iter_mut() {
        *w = !*w;
    }
}

pub fn caller(dst: &mut [u64]) {
    unsafe { rogue_kernel(dst) }
}
