//! Fixture: the UNWRAP, ORDERING, and MIXED-ORDERING rules must each
//! fire exactly where `lint_fixtures.rs` says they do. Never compiled —
//! line numbers are part of the test contract; edit both together.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn first(input: Option<u32>) -> u32 {
    input.unwrap()
}

pub fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}

pub fn mixed(flag: &AtomicU64) -> u64 {
    // ORDERING: justified write, but the load below mixes models.
    flag.store(1, Ordering::SeqCst);
    flag.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
