//! Micro-benchmarks of the native HDC primitives: the operations whose
//! per-word cost the accelerated kernels reproduce, in both the `u32`
//! golden-model packing and the `u64` fast-backend packing.
//!
//! Run with: `cargo bench -p pulp-hd-bench --bench hdc_ops`

use std::hint::black_box;

use hdc::bundle::majority_paper;
use hdc::hv64::{majority_paper64, Hv64};
use hdc::{BinaryHv, HdClassifier, HdConfig, SpatialEncoder};
use pulp_hd_bench::timing::bench;

fn bench_primitives() {
    let a = BinaryHv::random(313, 1);
    let b = BinaryHv::random(313, 2);
    bench("bind_10016", 20_000, || black_box(&a).bind(black_box(&b)));
    bench("hamming_10016", 50_000, || {
        black_box(&a).hamming(black_box(&b))
    });
    bench("rotate1_10016", 20_000, || black_box(&a).rotate_one());

    let a64 = Hv64::from_binary(&a);
    let b64 = Hv64::from_binary(&b);
    bench("bind_10016_u64", 20_000, || {
        black_box(&a64).bind(black_box(&b64))
    });
    bench("hamming_10016_u64", 50_000, || {
        black_box(&a64).hamming(black_box(&b64))
    });
    bench("rotate1_10016_u64", 20_000, || black_box(&a64).rotate(1));

    let inputs: Vec<BinaryHv> = (0..5).map(|s| BinaryHv::random(313, s)).collect();
    bench("majority5_10016", 5_000, || {
        majority_paper(black_box(&inputs))
    });
    let packed: Vec<Hv64> = inputs.iter().map(Hv64::from_binary).collect();
    let refs: Vec<&Hv64> = packed.iter().collect();
    bench("majority5_10016_u64", 5_000, || {
        majority_paper64(black_box(&refs))
    });
}

fn bench_encoders() {
    for channels in [4usize, 16, 64] {
        let enc = SpatialEncoder::new(channels, 22, 313, 7);
        let codes: Vec<u16> = (0..channels).map(|i| (i * 977) as u16).collect();
        bench(&format!("spatial_encode/{channels}"), 2_000, || {
            enc.encode_codes(black_box(&codes))
        });
    }

    let config = HdConfig::emg_default();
    let clf = HdClassifier::new(config, 5).unwrap();
    let window = vec![[1000u16, 40_000, 20_000, 60_000]; 5];
    bench("encode_window_emg", 1_000, || {
        clf.encode_window(black_box(&window)).unwrap()
    });
}

fn main() {
    bench_primitives();
    bench_encoders();
}
