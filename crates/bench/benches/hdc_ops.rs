//! Criterion micro-benchmarks of the native HDC primitives: the
//! operations whose per-word cost the accelerated kernels reproduce.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use hdc::bundle::majority_paper;
use hdc::{BinaryHv, HdClassifier, HdConfig, SpatialEncoder};

fn bench_primitives(c: &mut Criterion) {
    let a = BinaryHv::random(313, 1);
    let b = BinaryHv::random(313, 2);
    c.bench_function("bind_10016", |bch| bch.iter(|| black_box(&a).bind(black_box(&b))));
    c.bench_function("hamming_10016", |bch| {
        bch.iter(|| black_box(&a).hamming(black_box(&b)))
    });
    c.bench_function("rotate1_10016", |bch| bch.iter(|| black_box(&a).rotate_one()));

    let inputs: Vec<BinaryHv> = (0..5).map(|s| BinaryHv::random(313, s)).collect();
    c.bench_function("majority5_10016", |bch| {
        bch.iter(|| majority_paper(black_box(&inputs)))
    });
}

fn bench_encoders(c: &mut Criterion) {
    let mut group = c.benchmark_group("spatial_encode");
    for channels in [4usize, 16, 64] {
        let enc = SpatialEncoder::new(channels, 22, 313, 7);
        let codes: Vec<u16> = (0..channels).map(|i| (i * 977) as u16).collect();
        group.bench_with_input(BenchmarkId::from_parameter(channels), &codes, |bch, codes| {
            bch.iter(|| enc.encode_codes(black_box(codes)))
        });
    }
    group.finish();

    let config = HdConfig::emg_default();
    let clf = HdClassifier::new(config, 5).unwrap();
    let window = vec![[1000u16, 40_000, 20_000, 60_000]; 5];
    c.bench_function("encode_window_emg", |bch| {
        bch.iter(|| clf.encode_window(black_box(&window)).unwrap())
    });
}

criterion_group!(benches, bench_primitives, bench_encoders);
criterion_main!(benches);
