//! Benchmarks of the simulated chain itself — one benchmark per Table 3
//! column (wall-clock of the simulation; the *cycle counts* are what
//! the table binaries report).
//!
//! Run with: `cargo bench -p pulp-hd-bench --bench table_kernels`

use std::hint::black_box;

use pulp_hd_bench::timing::bench;
use pulp_hd_core::experiments::measure_chain;
use pulp_hd_core::layout::AccelParams;
use pulp_hd_core::platform::Platform;

fn main() {
    // Quarter dimension keeps bench wall-time sane; cycle ratios are
    // dimension-independent (Fig. 3).
    let params = AccelParams {
        n_words: 79,
        ..AccelParams::emg_default()
    };
    let configs = [
        ("pulpv3_1c", Platform::pulpv3(1)),
        ("pulpv3_4c", Platform::pulpv3(4)),
        ("wolf_1c", Platform::wolf_plain(1)),
        ("wolf_1c_builtin", Platform::wolf_builtin(1)),
        ("wolf_8c_builtin", Platform::wolf_builtin(8)),
        ("cortex_m4", Platform::cortex_m4()),
    ];
    for (name, platform) in configs {
        bench(&format!("simulated_chain/{name}"), 10, || {
            measure_chain(black_box(&platform), black_box(params)).unwrap()
        });
    }
}
