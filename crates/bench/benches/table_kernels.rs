//! Criterion benchmarks of the simulated chain itself — one benchmark
//! per Table 3 column (wall-clock of the simulation; the *cycle counts*
//! are what the table binaries report).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pulp_hd_core::experiments::measure_chain;
use pulp_hd_core::layout::AccelParams;
use pulp_hd_core::platform::Platform;

fn bench_chains(c: &mut Criterion) {
    // Quarter dimension keeps bench wall-time sane; cycle ratios are
    // dimension-independent (Fig. 3).
    let params = AccelParams { n_words: 79, ..AccelParams::emg_default() };
    let mut group = c.benchmark_group("simulated_chain");
    group.sample_size(10);
    let configs = [
        ("pulpv3_1c", Platform::pulpv3(1)),
        ("pulpv3_4c", Platform::pulpv3(4)),
        ("wolf_1c", Platform::wolf_plain(1)),
        ("wolf_1c_builtin", Platform::wolf_builtin(1)),
        ("wolf_8c_builtin", Platform::wolf_builtin(8)),
        ("cortex_m4", Platform::cortex_m4()),
    ];
    for (name, platform) in configs {
        group.bench_function(name, |b| {
            b.iter(|| measure_chain(black_box(&platform), black_box(params)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_chains);
criterion_main!(benches);
