//! Backend throughput: windows/second per execution backend at batch
//! sizes 1 / 32 / 256 — the perf baseline future scaling PRs must beat.
//!
//! **Inference:** the golden backend loops single-window calls (its
//! only mode); the fast backend runs the same batches single-threaded,
//! multi-threaded, and multi-threaded with the pruned AM scan through
//! `classify_batch`. The simulated-cluster backend is included at
//! reduced dimension for completeness: its wall-clock is the cost of
//! *simulating* the hardware, not a host-throughput contender.
//!
//! **Training:** the same batches with labels through the trainable
//! sessions (`TrainableBackend::begin_training`): the golden reference
//! (scalar counters), the fast session single-threaded, and the fast
//! session over its worker pool, plus an `online_update` microbench
//! (classify + adapt one window per call) for both backends.
//!
//! **Serving:** closed-loop client sweeps through `pulp-hd-serve` — 1,
//! 8, and 64 concurrent clients each driving submit-and-wait requests
//! at the server, once with adaptive micro-batching (the default
//! config) and once with per-request batch-1 submission through the
//! same machinery. Records windows/s plus the server's own p50/p99
//! latency telemetry, and guards that adaptive batching beats batch-1
//! at 64 clients (≥ 2× where there are cores to fan out to; parity on a
//! single-CPU host), that a *lone* client pays no adaptive-batching tax
//! (adaptive ≥ 0.95× batch-1 at 1 client — the solo-caller fast path),
//! and that p99 stays inside its structural envelope of `max_delay`
//! plus two batches' service time.
//!
//! **Sharding:** a 1/2/4-shard sweep over [`ShardedBackend`] — batch-
//! and class-sharded `classify_batch` at 256 windows, sharded training,
//! and a 64-client closed-loop serving run on a batch-sharded session
//! behind `Server::from_session` with its `ShardMonitor` registered.
//! Guards that 2-shard serving clearly beats the single-session server
//! where there are cores to shard across (parity floor on a single-CPU
//! host), and records `serving_speedup_sharded_vs_single_session`.
//!
//! **Wire serving:** the same adaptive server behind the network
//! front-end (`pulp_hd_serve::net`), swept at 1/8/64 closed-loop
//! [`NetClient`]s over loopback TCP and a Unix-domain socket. Records
//! the rows under `"net_serving"` and guards that UDS holds ≥ 0.5× the
//! in-process adaptive throughput at 64 clients where there are cores
//! for the connection threads to run on (sanity floor on a single-CPU
//! host) — the wire tax must stay a tax, not a serialization
//! bottleneck.
//!
//! **Pruned-scan cliff:** the pruned AM scan trades large-batch
//! throughput for single-window latency; at batch 256 `fast-pruned/mt`
//! lands well below `fast/mt`. The bench prints the two side by side,
//! records them under `"pruned_cliff"`, and guards the floor so the
//! documented trade-off can't silently deepen.
//!
//! Besides the human-readable report, the run records every
//! windows/second figure in `BENCH_throughput.json` at the workspace
//! root — together with the SIMD kernel level the process selected
//! (`"simd": "avx2" | "portable"`) and per-kernel microbenchmarks
//! (bind / bundle / AM scan in `u64` words per second) — so the perf
//! trajectory is tracked across PRs and wins are attributable to the
//! kernel that moved.
//!
//! Exits non-zero if the multi-threaded fast backend fails to beat the
//! looped golden backend on the large batch (inference *and*
//! training), or if a threaded path falls behind its single-threaded
//! twin (`fast/mt >= 0.95 × fast/1thread` and `train/fast-mt >= 0.95 ×
//! train/fast-1thread` at every batch size) — the regression guards
//! for the batched pipelines and their adaptive fan-out.
//!
//! The `accel_sim` row is a **cycle-accurate simulator** timed for
//! scale only: its wall-clock is the cost of simulating the hardware,
//! not a host-throughput contender, and no guard reads it.
//!
//! Run with: `cargo bench -p pulp-hd-bench --bench throughput`

use std::fmt::Write as _;
use std::hint::black_box;

use std::time::{Duration, Instant};

use emg::{Dataset, SynthConfig};
use hdc::hv64::{BitslicedBundler, Hv64};
use hdc::{BinaryHv, Simd};
use pulp_hd_bench::timing::bench;
use pulp_hd_core::backend::{
    AccelBackend, ApproxPolicy, BackendSession, ExecutionBackend, FastBackend, GoldenBackend,
    HdModel, ScanPolicy, ShardSpec, ShardedBackend, TrainSpec, TrainableBackend,
};
use pulp_hd_core::layout::AccelParams;
use pulp_hd_core::platform::Platform;
use pulp_hd_core::tune_dimension;
use pulp_hd_serve::net::{Endpoint, NetClient, NetClientConfig, NetConfig, NetServer};
use pulp_hd_serve::{ServeConfig, Server, ServerStats};

/// Where the machine-readable results land: the workspace root, next to
/// `Cargo.toml`, independent of the bench binary's working directory.
const JSON_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_throughput.json");

/// One measured (backend, batch) point.
struct Row {
    backend: &'static str,
    batch: usize,
    windows_per_sec: f64,
}

/// Synthetic-EMG windows of `samples` samples × 4 channels (the paper's
/// shape is 5), with their gesture labels for the training benches.
fn emg_windows(count: usize, samples: usize) -> (Vec<Vec<Vec<u16>>>, Vec<usize>) {
    let synth = SynthConfig {
        reps: 4,
        trial_secs: 1.0,
        ..SynthConfig::paper()
    };
    let data = Dataset::generate(&synth, 0, 0xBE7C);
    let all: Vec<usize> = (0..data.trials().len()).collect();
    let windows = data.windows_of(&all, samples);
    assert!(
        windows.len() >= count,
        "dataset yields {} windows",
        windows.len()
    );
    windows
        .into_iter()
        .take(count)
        .map(|w| (w.codes, w.label))
        .unzip()
}

/// The measured approximate-inference ladder (see the approx block in
/// `main`): throughput of each [`ApproxPolicy`] rung on the
/// repeated-window stream, the explicit-`Exact` overhead probe on the
/// standard workload, and the dimension auto-tuner's pick — everything
/// the JSON's `"approx"` section records.
struct ApproxReport {
    tau: f32,
    cache_capacity: usize,
    pool: usize,
    classes: usize,
    exact_wps: f64,
    threshold_wps: f64,
    cached_wps: f64,
    cached_threshold_wps: f64,
    cache_hit_rate: f64,
    exact_policy_wps: f64,
    plain_fast_wps: f64,
    tuner_base_words: usize,
    tuner_selected_words: usize,
    tuner_accuracy: f64,
    tuner_floor: f64,
}

/// One per-kernel microbenchmark point: `u64` words processed per
/// second through the dispatched kernel.
struct KernelRow {
    kernel: &'static str,
    words64_per_sec: f64,
}

/// One measured serving point: a closed-loop client sweep against one
/// server configuration.
struct ServingRow {
    clients: usize,
    mode: &'static str,
    windows_per_sec: f64,
    stats: ServerStats,
}

/// Samples per window in the serving sweep: a 50 ms stream segment at
/// the paper's 500 Hz rather than the 10 ms kernel unit — a served
/// request is a stream chunk, and the heavier encode makes service
/// time (the thing batching parallelizes) dominate the per-request
/// channel overhead both modes pay identically. Recorded in the JSON's
/// `serving_config`.
const SERVE_SAMPLES: usize = 25;

/// The adaptive micro-batching configuration the serving bench (and the
/// p99 guard) run against.
fn adaptive_config() -> ServeConfig {
    ServeConfig {
        max_batch: 64,
        max_delay: Duration::from_micros(200),
        queue_depth: 1024,
        ..ServeConfig::default()
    }
}

/// Per-request submission through the same serving machinery: every
/// batch holds exactly one window, no fill delay — the baseline that
/// adaptive batching must beat under concurrency.
fn batch1_config() -> ServeConfig {
    ServeConfig {
        max_batch: 1,
        max_delay: Duration::ZERO,
        queue_depth: 1024,
        ..ServeConfig::default()
    }
}

/// One measured wire-serving point: a closed-loop [`NetClient`] sweep
/// against a [`NetServer`] on one transport.
struct NetServingRow {
    clients: usize,
    transport: &'static str,
    windows_per_sec: f64,
    stats: ServerStats,
}

/// One measured sharding point: a `ShardedBackend` workload at a shard
/// count.
struct ShardRow {
    shards: usize,
    strategy: &'static str,
    workload: &'static str,
    windows_per_sec: f64,
}

/// Drives `clients` closed-loop client threads (submit-and-wait, each
/// request picked round-robin from `windows`) at `server` and returns
/// measured wall-clock throughput plus the server's own telemetry.
fn drive_clients(
    server: Server,
    clients: usize,
    requests_per_client: usize,
    windows: &[Vec<Vec<u16>>],
) -> (f64, ServerStats) {
    let start = Instant::now();
    std::thread::scope(|scope| {
        for lane in 0..clients {
            let client = server.client();
            scope.spawn(move || {
                for i in 0..requests_per_client {
                    let w = &windows[(lane * requests_per_client + i) % windows.len()];
                    client.classify(w).expect("served classification");
                }
            });
        }
    });
    let secs = start.elapsed().as_secs_f64();
    let wps = (clients * requests_per_client) as f64 / secs;
    (wps, server.shutdown())
}

/// A closed-loop client sweep against a freshly spawned single-session
/// server on the fast backend.
fn serving_run(
    model: &HdModel,
    threads: usize,
    config: ServeConfig,
    clients: usize,
    requests_per_client: usize,
    windows: &[Vec<Vec<u16>>],
) -> (f64, ServerStats) {
    let backend = FastBackend::try_with_threads(threads).expect("nonzero thread count");
    let server = Server::spawn(&backend, model, config).expect("serving spawn");
    drive_clients(server, clients, requests_per_client, windows)
}

/// A closed-loop client sweep against a server fronting a batch-sharded
/// session (`ShardedBackend::fast`, which splits the machine's thread
/// budget across the shards) with its `ShardMonitor` registered.
fn serving_run_sharded(
    model: &HdModel,
    shards: usize,
    config: ServeConfig,
    clients: usize,
    requests_per_client: usize,
    windows: &[Vec<Vec<u16>>],
) -> (f64, ServerStats) {
    let backend = ShardedBackend::fast(ShardSpec::Batch(shards)).expect("nonzero shard count");
    let session = backend
        .prepare_sharded(model)
        .expect("sharded serving prepare");
    let monitor = session.monitor();
    let server = Server::from_session(Box::new(session), config)
        .expect("sharded serving spawn")
        .with_shard_monitor(monitor);
    drive_clients(server, clients, requests_per_client, windows)
}

/// A closed-loop wire-client sweep: the same engine and adaptive
/// config as `serving_run`, but every request round-trips through the
/// network front-end (`NetServer` + one `NetClient` per client thread)
/// over loopback TCP or a Unix-domain socket.
fn net_serving_run(
    model: &HdModel,
    threads: usize,
    config: ServeConfig,
    transport: &'static str,
    clients: usize,
    requests_per_client: usize,
    windows: &[Vec<Vec<u16>>],
) -> (f64, ServerStats) {
    let backend = FastBackend::try_with_threads(threads).expect("nonzero thread count");
    let server = Server::spawn(&backend, model, config).expect("serving spawn");
    let uds_path = std::env::temp_dir().join(format!(
        "pulp-hd-bench-net-{}-{transport}-{clients}.sock",
        std::process::id()
    ));
    let endpoint = match transport {
        "uds" => Endpoint::Uds(uds_path.clone()),
        _ => Endpoint::Tcp("127.0.0.1:0".into()),
    };
    let net = NetServer::spawn(server, &[endpoint], NetConfig::default()).expect("net spawn");
    let tcp_addr = net.tcp_addr();
    let connect = || -> NetClient {
        match transport {
            "uds" => NetClient::connect_uds(&uds_path, NetClientConfig::default()),
            _ => NetClient::connect_tcp(tcp_addr.expect("tcp bound"), NetClientConfig::default()),
        }
        .expect("wire connect")
    };
    let start = Instant::now();
    std::thread::scope(|scope| {
        for lane in 0..clients {
            let mut client = connect();
            scope.spawn(move || {
                for i in 0..requests_per_client {
                    let w = &windows[(lane * requests_per_client + i) % windows.len()];
                    client.classify(w).expect("wire classification");
                }
            });
        }
    });
    let secs = start.elapsed().as_secs_f64();
    let wps = (clients * requests_per_client) as f64 / secs;
    let (stats, _) = net.shutdown();
    (wps, stats)
}

#[allow(clippy::too_many_arguments)]
fn write_json(
    params: &AccelParams,
    threads: usize,
    rows: &[Row],
    training: &[Row],
    serving: &[ServingRow],
    net_serving: &[NetServingRow],
    sharding: &[ShardRow],
    kernels: &[KernelRow],
    speedup: f64,
    train_speedup: f64,
    serving_speedup: f64,
    serving_speedup_sharded: f64,
    net_serving_ratio: f64,
    pruned_cliff: (f64, f64),
    containment: (f64, f64, f64),
    approx: &ApproxReport,
) {
    let write_rows = |json: &mut String, rows: &[Row]| {
        for (i, row) in rows.iter().enumerate() {
            let comma = if i + 1 < rows.len() { "," } else { "" };
            let _ = writeln!(
                json,
                "    {{ \"backend\": \"{}\", \"batch\": {}, \"windows_per_sec\": {:.1} }}{comma}",
                row.backend, row.batch, row.windows_per_sec
            );
        }
    };
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"throughput\",");
    let _ = writeln!(
        json,
        "  \"run\": \"cargo bench -p pulp-hd-bench --bench throughput\","
    );
    let _ = writeln!(
        json,
        "  \"model\": {{ \"n_words\": {}, \"channels\": {}, \"levels\": {}, \"ngram\": {}, \"classes\": {}, \"samples_per_window\": 5 }},",
        params.n_words, params.channels, params.levels, params.ngram, params.classes
    );
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"simd\": \"{}\",", Simd::active().name());
    let _ = writeln!(json, "  \"results\": [");
    write_rows(&mut json, rows);
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"training\": [");
    write_rows(&mut json, training);
    let _ = writeln!(json, "  ],");
    let adaptive = adaptive_config();
    let _ = writeln!(
        json,
        "  \"serving_config\": {{ \"max_batch\": {}, \"max_delay_us\": {}, \
         \"queue_depth\": {}, \"samples_per_window\": {SERVE_SAMPLES} }},",
        adaptive.max_batch,
        adaptive.max_delay.as_micros(),
        adaptive.queue_depth
    );
    let _ = writeln!(json, "  \"serving\": [");
    for (i, row) in serving.iter().enumerate() {
        let comma = if i + 1 < serving.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{ \"clients\": {}, \"mode\": \"{}\", \"windows_per_sec\": {:.1}, \
             \"p50_us\": {}, \"p99_us\": {}, \"latency_max_us\": {}, \"mean_batch\": {:.1}, \
             \"batch_service_max_us\": {} }}{comma}",
            row.clients,
            row.mode,
            row.windows_per_sec,
            row.stats.p50_us,
            row.stats.p99_us,
            row.stats.latency_max_us,
            row.stats.mean_batch,
            row.stats.batch_service_max_us
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"net_serving\": [");
    for (i, row) in net_serving.iter().enumerate() {
        let comma = if i + 1 < net_serving.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{ \"clients\": {}, \"transport\": \"{}\", \"windows_per_sec\": {:.1}, \
             \"p50_us\": {}, \"p99_us\": {}, \"latency_max_us\": {}, \"mean_batch\": {:.1} }}{comma}",
            row.clients,
            row.transport,
            row.windows_per_sec,
            row.stats.p50_us,
            row.stats.p99_us,
            row.stats.latency_max_us,
            row.stats.mean_batch
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"sharding\": [");
    for (i, row) in sharding.iter().enumerate() {
        let comma = if i + 1 < sharding.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{ \"shards\": {}, \"strategy\": \"{}\", \"workload\": \"{}\", \
             \"windows_per_sec\": {:.1} }}{comma}",
            row.shards, row.strategy, row.workload, row.windows_per_sec
        );
    }
    let _ = writeln!(json, "  ],");
    let (cliff_full, cliff_pruned) = pruned_cliff;
    let _ = writeln!(
        json,
        "  \"pruned_cliff\": {{ \"batch\": 256, \"fast_mt_wps\": {cliff_full:.1}, \
         \"fast_pruned_mt_wps\": {cliff_pruned:.1}, \"ratio\": {:.2} }},",
        cliff_pruned / cliff_full
    );
    let _ = writeln!(json, "  \"kernels\": [");
    for (i, k) in kernels.iter().enumerate() {
        let comma = if i + 1 < kernels.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{ \"kernel\": \"{}\", \"words64_per_sec\": {:.0} }}{comma}",
            k.kernel, k.words64_per_sec
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"speedup_fast_mt_vs_golden_batch256\": {speedup:.2},"
    );
    let _ = writeln!(
        json,
        "  \"train_speedup_fast_mt_vs_golden_batch256\": {train_speedup:.2},"
    );
    let _ = writeln!(
        json,
        "  \"serving_speedup_adaptive_vs_batch1_64clients\": {serving_speedup:.2},"
    );
    let _ = writeln!(
        json,
        "  \"serving_speedup_sharded_vs_single_session\": {serving_speedup_sharded:.2},"
    );
    let _ = writeln!(
        json,
        "  \"net_serving_uds_vs_inprocess_64clients\": {net_serving_ratio:.2},"
    );
    let (contained_wps, uncontained_wps, containment_ratio) = containment;
    let _ = writeln!(
        json,
        "  \"containment\": {{ \"contained_wps\": {contained_wps:.1}, \
         \"uncontained_wps\": {uncontained_wps:.1}, \"ratio\": {containment_ratio:.3} }},"
    );
    let approx_best = approx
        .threshold_wps
        .max(approx.cached_wps)
        .max(approx.cached_threshold_wps);
    let _ = writeln!(json, "  \"approx\": {{");
    let _ = writeln!(
        json,
        "    \"workload\": \"one-shot {}-class AM, {}-window pool cycled to a 256-window \
         stream\",",
        approx.classes, approx.pool
    );
    let _ = writeln!(
        json,
        "    \"batch\": 256, \"tau\": {:.4}, \"cache_capacity\": {},",
        approx.tau, approx.cache_capacity
    );
    let _ = writeln!(
        json,
        "    \"exact_wps\": {:.1}, \"threshold_wps\": {:.1}, \"cached_wps\": {:.1}, \
         \"cached_threshold_wps\": {:.1},",
        approx.exact_wps, approx.threshold_wps, approx.cached_wps, approx.cached_threshold_wps
    );
    let _ = writeln!(
        json,
        "    \"best_ratio_vs_exact\": {:.2}, \"cache_hit_rate\": {:.3},",
        approx_best / approx.exact_wps,
        approx.cache_hit_rate
    );
    let _ = writeln!(
        json,
        "    \"exact_policy_wps\": {:.1}, \"plain_fast_mt_wps\": {:.1}, \
         \"exact_policy_ratio\": {:.3},",
        approx.exact_policy_wps,
        approx.plain_fast_wps,
        approx.exact_policy_wps / approx.plain_fast_wps
    );
    let _ = writeln!(
        json,
        "    \"tuner\": {{ \"base_n_words\": {}, \"selected_n_words\": {}, \
         \"holdout_accuracy\": {:.4}, \"floor\": {:.2} }}",
        approx.tuner_base_words,
        approx.tuner_selected_words,
        approx.tuner_accuracy,
        approx.tuner_floor
    );
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");
    std::fs::write(JSON_PATH, json).expect("write BENCH_throughput.json");
    println!("results recorded in {JSON_PATH}");
}

/// Times the dispatched hot kernels in isolation on paper-shaped
/// (313-u32-word ≙ 157-u64-word) hypervectors, so cross-PR wins are
/// attributable: bind (XOR), the 5-way carry-save bundle, and the full
/// AM distance scan.
fn kernel_microbench() -> Vec<KernelRow> {
    const WORDS64: f64 = 157.0;
    let inputs: Vec<Hv64> = (0..5)
        .map(|s| Hv64::from_binary(&BinaryHv::random(313, 0xD15B + s)))
        .collect();
    let mut out = Hv64::zeros(313);
    let iters = 200_000;

    let mut acc = inputs[0].clone();
    let bind = bench("kernel/bind/313w", iters, || {
        acc.xor_assign(black_box(&inputs[1]));
    });
    let bundle = bench("kernel/bundle5/313w", iters, || {
        BitslicedBundler::bundle_paper_into(5, |i| black_box(&inputs[i]), &mut out);
    });
    let query = inputs[4].clone();
    let am_scan = bench("kernel/am_scan5/313w", iters, || {
        inputs
            .iter()
            .map(|p| black_box(p).hamming(&query))
            .sum::<u32>()
    });
    vec![
        KernelRow {
            kernel: "bind",
            words64_per_sec: WORDS64 * bind.rate(),
        },
        KernelRow {
            kernel: "bundle5",
            words64_per_sec: 5.0 * WORDS64 * bundle.rate(),
        },
        KernelRow {
            kernel: "am_scan5",
            words64_per_sec: 5.0 * WORDS64 * am_scan.rate(),
        },
    ]
}

fn main() {
    let params = AccelParams::emg_default(); // 313 words ≙ 10,016-D
    let model = HdModel::random(&params, 0x7412);
    let (windows, labels) = emg_windows(256, 5);

    let mut golden = GoldenBackend.prepare(&model).expect("golden prepare");
    let mut fast1 = FastBackend::with_threads(1)
        .prepare(&model)
        .expect("fast prepare");
    let threads = FastBackend::new().threads().max(4);
    let mut fast_mt = FastBackend::with_threads(threads)
        .prepare(&model)
        .expect("fast prepare");
    let mut fast_pruned = FastBackend::with_threads(threads)
        .with_scan(ScanPolicy::Pruned)
        .prepare(&model)
        .expect("fast-pruned prepare");

    println!(
        "backend throughput, 10,016-D EMG model, windows of 5 samples × 4 channels \
         (simd: {})\n",
        Simd::active().name()
    );
    let mut rows: Vec<Row> = Vec::new();
    let mut headline = None;
    // (fast/mt w/s, fast-pruned/mt w/s) at batch 256 — the pruned-scan
    // cliff pair.
    let mut pruned_cliff = None;
    // (batch, single-thread w/s, multi-thread w/s) for the adaptive
    // fan-out guard.
    let mut mt_ratios: Vec<(usize, f64, f64)> = Vec::new();
    for batch in [1usize, 32, 256] {
        let batch_windows = &windows[..batch];
        // Keep ≥8 timed iterations even at the largest batch: the
        // batch-256 comparison gates CI, so it must ride out scheduler
        // noise on shared runners.
        let iters = (1024 / batch).max(8) as u32;

        let g = bench(&format!("golden/loop/batch{batch}"), iters, || {
            batch_windows
                .iter()
                .map(|w| golden.classify(w).unwrap())
                .collect::<Vec<_>>()
        });
        // The single- vs multi-thread comparison gates CI at a tight
        // 0.95 ratio, so measure the two guarded backends interleaved
        // and keep each one's best of three runs: wall-clock noise only
        // ever slows a run down, and interleaving decorrelates machine
        // drift (frequency, cache state) from the backend under test.
        let mut f1_secs = f64::INFINITY;
        let mut fm_secs = f64::INFINITY;
        for rep in 0..3 {
            let f1 = bench(
                &format!("fast/1thread/batch{batch}/rep{rep}"),
                iters,
                || fast1.classify_batch(batch_windows).unwrap(),
            );
            let fm = bench(
                &format!("fast/{threads}threads/batch{batch}/rep{rep}"),
                iters,
                || fast_mt.classify_batch(batch_windows).unwrap(),
            );
            f1_secs = f1_secs.min(f1.per_iter().as_secs_f64());
            fm_secs = fm_secs.min(fm.per_iter().as_secs_f64());
        }
        let fp = bench(
            &format!("fast-pruned/{threads}threads/batch{batch}"),
            iters,
            || fast_pruned.classify_batch(batch_windows).unwrap(),
        );

        let wps = |secs_per_batch: f64| batch as f64 / secs_per_batch;
        let g_wps = wps(g.per_iter().as_secs_f64());
        let f1_wps = wps(f1_secs);
        let fm_wps = wps(fm_secs);
        let fp_wps = wps(fp.per_iter().as_secs_f64());
        println!(
            "  batch {batch:>3}: golden {g_wps:>9.0} w/s   fast×1 {f1_wps:>9.0} w/s   \
             fast×{threads} {fm_wps:>9.0} w/s   fast-pruned×{threads} {fp_wps:>9.0} w/s\n"
        );
        rows.push(Row {
            backend: "golden/loop",
            batch,
            windows_per_sec: g_wps,
        });
        rows.push(Row {
            backend: "fast/1thread",
            batch,
            windows_per_sec: f1_wps,
        });
        rows.push(Row {
            backend: "fast/mt",
            batch,
            windows_per_sec: fm_wps,
        });
        rows.push(Row {
            backend: "fast-pruned/mt",
            batch,
            windows_per_sec: fp_wps,
        });
        mt_ratios.push((batch, f1_wps, fm_wps));
        if batch == 256 {
            headline = Some((g.per_iter().as_secs_f64(), fm_secs));
            pruned_cliff = Some((fm_wps, fp_wps));
        }
    }

    // Containment overhead: every pool job now runs under a
    // catch_unwind wrapper so a worker panic becomes a typed error
    // instead of a dead session — and that wrapper must be effectively
    // free on the healthy path. Same interleaved best-of-three
    // discipline as the thread-scaling guards: within-run comparison,
    // so the 0.95 floor is machine-independent.
    let mut contained_secs = f64::INFINITY;
    let mut uncontained_secs = f64::INFINITY;
    {
        let mut unguarded = FastBackend::with_threads(threads)
            .without_containment()
            .prepare(&model)
            .expect("fast prepare");
        let batch_windows = &windows[..256];
        for rep in 0..3 {
            let c = bench(&format!("fast/contained/batch256/rep{rep}"), 8, || {
                fast_mt.classify_batch(batch_windows).unwrap()
            });
            let u = bench(&format!("fast/uncontained/batch256/rep{rep}"), 8, || {
                unguarded.classify_batch(batch_windows).unwrap()
            });
            contained_secs = contained_secs.min(c.per_iter().as_secs_f64());
            uncontained_secs = uncontained_secs.min(u.per_iter().as_secs_f64());
        }
    }
    let contained_wps = 256.0 / contained_secs;
    let uncontained_wps = 256.0 / uncontained_secs;
    let containment_ratio = contained_wps / uncontained_wps;
    println!(
        "panic containment on the healthy path at batch 256: contained {contained_wps:.0} w/s \
         vs uncontained {uncontained_wps:.0} w/s ({containment_ratio:.2}x)\n"
    );

    // The approximate-inference ladder. The `ApproxPolicy` rungs trade
    // bit-exactness for AM-scan work, so they are measured on a
    // scan-dominated shape: a one-shot 64-class associative memory
    // (each class enrolled from a single window — the paper's one-shot
    // learning mode, scaled out to a wide vocabulary) driven by a
    // repeated-window stream (a 48-window pool cycled to 256 — the
    // steady-state streaming shape the query cache targets). The
    // accuracy side of the trade is pinned separately by
    // `crates/core/tests/approx_accuracy.rs`; this block pins the
    // speed side and fills the JSON's `"approx"` section.
    println!(
        "approximate-inference ladder at batch 256 \
         (one-shot 64-class AM, repeated-window stream)\n"
    );
    let approx_report = {
        // Enroll the one-shot classes greedily, keeping only windows
        // whose *quantized* codes land ≥ 2 amplitude levels away from
        // every already-enrolled window in at least 20% of positions:
        // the synthetic stream repeats itself (steady-state gesture
        // segments quantize to identical windows, and the CIM's level
        // vectors are linearly similar), and near-duplicate prototypes
        // would collapse the runner-up distance the tau derivation
        // below rests on. The draw also feeds the dimension auto-tuner
        // its labelled train/holdout splits.
        let (draw, draw_labels) = emg_windows(1024, 5);
        let spread = |a: &[Vec<u16>], b: &[Vec<u16>]| {
            let codes = a.iter().zip(b).flat_map(|(sa, sb)| sa.iter().zip(sb));
            let (diff, total) = codes.fold((0usize, 0usize), |(d, t), (xa, xb)| {
                let la = hdc::quantize_code(*xa, params.levels);
                let lb = hdc::quantize_code(*xb, params.levels);
                (d + usize::from(la.abs_diff(lb) >= 2), t + 1)
            });
            diff * 5 >= total
        };
        let mut enrolled: Vec<Vec<Vec<u16>>> = Vec::new();
        for w in &draw {
            if enrolled.len() == 64 {
                break;
            }
            if enrolled.iter().all(|e| spread(e, w)) {
                enrolled.push(w.clone());
            }
        }
        assert_eq!(
            enrolled.len(),
            64,
            "the 1024-window draw must yield 64 spread one-shot prototypes"
        );
        let approx_params = AccelParams {
            classes: enrolled.len(),
            ..params
        };
        let spec = TrainSpec::random(&approx_params, 0x7412);
        let one_shot_labels: Vec<usize> = (0..enrolled.len()).collect();
        let mut trainer = FastBackend::with_threads(threads)
            .begin_training(&spec)
            .expect("approx training session");
        trainer
            .train_batch(&enrolled, &one_shot_labels)
            .expect("approx enrolment");
        let approx_model = trainer.finalize().expect("approx model");

        const POOL: usize = 48;
        const CAPACITY: usize = 64;
        let stream: Vec<Vec<Vec<u16>>> = (0..256).map(|i| enrolled[i % POOL].clone()).collect();

        // Derive tau from the measured geometry, the same recipe the
        // accuracy harness documents: safely below the tightest
        // runner-up distance on this stream, so the threshold scan can
        // only ever accept the true nearest prototype here.
        let mut exact = FastBackend::with_threads(threads)
            .prepare(&approx_model)
            .expect("approx exact prepare");
        let pool_verdicts = exact.classify_batch(&stream[..POOL]).expect("tau probe");
        let min_runner_up = pool_verdicts
            .iter()
            .map(|v| {
                v.distances
                    .iter()
                    .enumerate()
                    .filter(|&(c, _)| c != v.class)
                    .map(|(_, &d)| d)
                    .min()
                    .expect("at least two classes")
            })
            .min()
            .expect("non-empty pool");
        assert!(
            min_runner_up > 0,
            "one-shot prototypes must be distinct for the tau derivation"
        );
        let bits = (approx_params.n_words * 32) as f64;
        let tau = (0.8 * f64::from(min_runner_up) / bits) as f32;

        let mut threshold = FastBackend::with_threads(threads)
            .with_approx(ApproxPolicy::Threshold { tau })
            .prepare(&approx_model)
            .expect("approx threshold prepare");
        let mut cached = FastBackend::with_threads(threads)
            .with_approx(ApproxPolicy::Cached { capacity: CAPACITY })
            .prepare(&approx_model)
            .expect("approx cached prepare");
        let mut cached_threshold = FastBackend::with_threads(threads)
            .with_approx(ApproxPolicy::CachedThreshold {
                tau,
                capacity: CAPACITY,
            })
            .prepare(&approx_model)
            .expect("approx cached-threshold prepare");

        // Interleaved best-of-three, like every CI-gated within-run
        // ratio. The caching sessions deliberately keep their warm
        // caches across reps — steady-state streaming is the state the
        // rung exists for — and the recorded hit rate is the
        // accumulated one.
        let mut ex_secs = f64::INFINITY;
        let mut th_secs = f64::INFINITY;
        let mut ca_secs = f64::INFINITY;
        let mut ct_secs = f64::INFINITY;
        for rep in 0..3 {
            let e = bench(&format!("approx/exact/batch256/rep{rep}"), 8, || {
                exact.classify_batch(&stream).unwrap()
            });
            let t = bench(&format!("approx/threshold/batch256/rep{rep}"), 8, || {
                threshold.classify_batch(&stream).unwrap()
            });
            let c = bench(&format!("approx/cached/batch256/rep{rep}"), 8, || {
                cached.classify_batch(&stream).unwrap()
            });
            let b = bench(
                &format!("approx/cached-threshold/batch256/rep{rep}"),
                8,
                || cached_threshold.classify_batch(&stream).unwrap(),
            );
            ex_secs = ex_secs.min(e.per_iter().as_secs_f64());
            th_secs = th_secs.min(t.per_iter().as_secs_f64());
            ca_secs = ca_secs.min(c.per_iter().as_secs_f64());
            ct_secs = ct_secs.min(b.per_iter().as_secs_f64());
        }
        let monitor = cached.approx_monitor().expect("cached session monitor");
        let cache_hit_rate =
            monitor.hits() as f64 / (monitor.hits() + monitor.misses()).max(1) as f64;

        // `ApproxPolicy::Exact` must stay free: an explicitly-Exact
        // session vs the plain fast/mt session it is code-identical
        // to, interleaved on the standard 5-class workload. The plain
        // side re-measured here is the same protocol as the recorded
        // `fast/mt` baseline row, so the 0.98 floor is a within-run
        // (machine-independent) restatement of "within 0.98x of the
        // recorded fast/mt baseline".
        let mut exact_policy = FastBackend::with_threads(threads)
            .with_approx(ApproxPolicy::Exact)
            .prepare(&model)
            .expect("explicit-Exact prepare");
        let batch_windows = &windows[..256];
        let mut plain_secs = f64::INFINITY;
        let mut policy_secs = f64::INFINITY;
        for rep in 0..5 {
            let p = bench(&format!("approx/plain-fast/batch256/rep{rep}"), 8, || {
                fast_mt.classify_batch(batch_windows).unwrap()
            });
            let e = bench(&format!("approx/exact-policy/batch256/rep{rep}"), 8, || {
                exact_policy.classify_batch(batch_windows).unwrap()
            });
            plain_secs = plain_secs.min(p.per_iter().as_secs_f64());
            policy_secs = policy_secs.min(e.per_iter().as_secs_f64());
        }

        // The dimension auto-tuner on the real 5-gesture task: the
        // smallest halving-ladder width that holds the accuracy floor
        // on a held-out split, recorded so the JSON carries the
        // accuracy-for-dimension trade alongside the throughput one.
        // Split the draw into 32-window blocks dealt alternately to the
        // two splits: it is ordered by trial, so contiguous halves
        // would not cover every gesture, while a per-window interleave
        // leaks near-duplicate neighbouring windows across the splits
        // and lets the ladder ride down to absurd widths.
        let half = |windows: &[Vec<Vec<u16>>], labels: &[usize], keep: usize| {
            let pick = |i: &usize| (i / 32) % 2 == keep;
            let w: Vec<Vec<Vec<u16>>> = (0..windows.len())
                .filter(pick)
                .map(|i| windows[i].clone())
                .collect();
            let l: Vec<usize> = (0..labels.len()).filter(pick).map(|i| labels[i]).collect();
            (w, l)
        };
        let (tune_train_w, tune_train_l) = half(&draw[..512], &draw_labels[..512], 0);
        let (tune_hold_w, tune_hold_l) = half(&draw[..512], &draw_labels[..512], 1);
        // An absolute floor would bake this synthetic draw's difficulty
        // into the bench, so calibrate it instead: probe the full
        // accuracy-vs-width curve (floor 0 rides the ladder to the
        // bottom), then ask the tuner for the smallest width within 3%
        // relative of the full-width accuracy.
        let tuner = FastBackend::with_threads(threads);
        let probe = tune_dimension(
            &tuner,
            &params,
            0x7412,
            (&tune_train_w, &tune_train_l),
            (&tune_hold_w, &tune_hold_l),
            0.0,
        )
        .expect("tuner probe");
        let base_accuracy = probe.evaluated.first().expect("probed base width").1;
        let tuner_floor = 0.97 * base_accuracy;
        let tuned = tune_dimension(
            &tuner,
            &params,
            0x7412,
            (&tune_train_w, &tune_train_l),
            (&tune_hold_w, &tune_hold_l),
            tuner_floor,
        )
        .expect("dimension tuning");

        let wps = |secs: f64| 256.0 / secs;
        let report = ApproxReport {
            tau,
            cache_capacity: CAPACITY,
            pool: POOL,
            classes: approx_params.classes,
            exact_wps: wps(ex_secs),
            threshold_wps: wps(th_secs),
            cached_wps: wps(ca_secs),
            cached_threshold_wps: wps(ct_secs),
            cache_hit_rate,
            exact_policy_wps: wps(policy_secs),
            plain_fast_wps: wps(plain_secs),
            tuner_base_words: params.n_words,
            tuner_selected_words: tuned.n_words,
            tuner_accuracy: tuned.accuracy,
            tuner_floor,
        };
        println!(
            "  exact {:>9.0} w/s   threshold(tau={:.3}) {:>9.0} w/s ({:.2}x)   \
             cached {:>9.0} w/s ({:.2}x, hit rate {:.0}%)   cached+threshold {:>9.0} w/s ({:.2}x)",
            report.exact_wps,
            report.tau,
            report.threshold_wps,
            report.threshold_wps / report.exact_wps,
            report.cached_wps,
            report.cached_wps / report.exact_wps,
            100.0 * report.cache_hit_rate,
            report.cached_threshold_wps,
            report.cached_threshold_wps / report.exact_wps,
        );
        println!(
            "  ApproxPolicy::Exact on the 5-class workload: {:.0} w/s vs plain fast/mt \
             {:.0} w/s ({:.3}x)",
            report.exact_policy_wps,
            report.plain_fast_wps,
            report.exact_policy_wps / report.plain_fast_wps,
        );
        let curve: Vec<String> = tuned
            .evaluated
            .iter()
            .map(|(w, a)| format!("{w}w {:.0}%", 100.0 * a))
            .collect();
        println!(
            "  dimension auto-tuner: {} -> {} u32 words at {:.1}% holdout accuracy \
             (floor {:.0}%; ladder {})\n",
            report.tuner_base_words,
            report.tuner_selected_words,
            100.0 * report.tuner_accuracy,
            100.0 * report.tuner_floor,
            curve.join(", "),
        );
        report
    };

    // The simulated platform, for scale: wall-clock of cycle-accurate
    // simulation at quarter dimension, one window at a time.
    let reduced = AccelParams {
        n_words: 79,
        ..params
    };
    let reduced_model = HdModel::random(&reduced, 0x7412);
    let mut accel = AccelBackend::new(Platform::wolf_builtin(8))
        .prepare(&reduced_model)
        .expect("accel prepare");
    let one_gram = vec![windows[0][0].clone()];
    let a = bench("accel_sim/wolf8/2528-D/batch1", 3, || {
        accel.classify(&one_gram).unwrap()
    });
    rows.push(Row {
        backend: "accel_sim/wolf8/2528-D",
        batch: 1,
        windows_per_sec: 1.0 / a.per_iter().as_secs_f64(),
    });

    // Training throughput through the trainable sessions: one-shot
    // accumulation of the same labelled batches (`reset` inside the
    // timed closure keeps every iteration training the same fresh
    // model; its cost — a counter memset — is part of the batch cycle).
    // `TrainSpec::random` shares its seed streams with
    // `HdModel::random`, so the trained chain has the inference model's
    // shape and item memories.
    let spec = TrainSpec::random(&params, 0x7412);
    let mut train_golden = GoldenBackend
        .begin_training(&spec)
        .expect("golden training session");
    let mut train_fast1 = FastBackend::with_threads(1)
        .begin_training(&spec)
        .expect("fast training session");
    let mut train_fast_mt = FastBackend::with_threads(threads)
        .begin_training(&spec)
        .expect("fast training session");

    println!("\ntraining throughput (one-shot accumulation, same windows + labels)\n");
    let mut training_rows: Vec<Row> = Vec::new();
    let mut train_headline = None;
    let mut train_mt_ratios: Vec<(usize, f64, f64)> = Vec::new();
    for batch in [1usize, 32, 256] {
        let batch_windows = &windows[..batch];
        let batch_labels = &labels[..batch];
        let iters = (1024 / batch).max(8) as u32;

        let g = bench(&format!("train/golden/batch{batch}"), iters, || {
            train_golden.reset();
            train_golden
                .train_batch(batch_windows, batch_labels)
                .unwrap();
        });
        // Same interleaved best-of-N protocol as the inference guard
        // (the 0.95 mt-vs-1thread ratio gates CI), one notch more
        // noise-immune: a training iteration is shorter than a
        // classification one (no AM scan, no per-window verdict), so
        // the same absolute scheduler jitter is a larger fraction of
        // the measurement.
        let mut f1_secs = f64::INFINITY;
        let mut fm_secs = f64::INFINITY;
        for rep in 0..5 {
            let f1 = bench(
                &format!("train/fast-1thread/batch{batch}/rep{rep}"),
                iters,
                || {
                    train_fast1.reset();
                    train_fast1
                        .train_batch(batch_windows, batch_labels)
                        .unwrap();
                },
            );
            let fm = bench(
                &format!("train/fast-{threads}threads/batch{batch}/rep{rep}"),
                iters,
                || {
                    train_fast_mt.reset();
                    train_fast_mt
                        .train_batch(batch_windows, batch_labels)
                        .unwrap();
                },
            );
            f1_secs = f1_secs.min(f1.per_iter().as_secs_f64());
            fm_secs = fm_secs.min(fm.per_iter().as_secs_f64());
        }
        let wps = |secs_per_batch: f64| batch as f64 / secs_per_batch;
        let g_wps = wps(g.per_iter().as_secs_f64());
        let f1_wps = wps(f1_secs);
        let fm_wps = wps(fm_secs);
        println!(
            "  batch {batch:>3}: golden {g_wps:>9.0} w/s   fast×1 {f1_wps:>9.0} w/s   \
             fast×{threads} {fm_wps:>9.0} w/s\n"
        );
        training_rows.push(Row {
            backend: "train/golden",
            batch,
            windows_per_sec: g_wps,
        });
        training_rows.push(Row {
            backend: "train/fast-1thread",
            batch,
            windows_per_sec: f1_wps,
        });
        training_rows.push(Row {
            backend: "train/fast-mt",
            batch,
            windows_per_sec: fm_wps,
        });
        train_mt_ratios.push((batch, f1_wps, fm_wps));
        if batch == 256 {
            train_headline = Some((g.per_iter().as_secs_f64(), fm_secs));
        }
    }

    // Online-update microbench: classify + adapt one labelled window
    // per call against a model pre-trained on the full batch — the
    // deployed continuous-learning loop.
    {
        train_golden.reset();
        train_golden.train_batch(&windows, &labels).unwrap();
        train_fast1.reset();
        train_fast1.train_batch(&windows, &labels).unwrap();
        let mut i = 0usize;
        let g = bench("online_update/golden", 512, || {
            let k = i % windows.len();
            i += 1;
            train_golden.update_online(&windows[k], labels[k]).unwrap()
        });
        i = 0;
        let f = bench("online_update/fast", 4096, || {
            let k = i % windows.len();
            i += 1;
            train_fast1.update_online(&windows[k], labels[k]).unwrap()
        });
        training_rows.push(Row {
            backend: "online_update/golden",
            batch: 1,
            windows_per_sec: g.rate(),
        });
        training_rows.push(Row {
            backend: "online_update/fast",
            batch: 1,
            windows_per_sec: f.rate(),
        });
    }

    // Serving: closed-loop client sweep through the adaptive
    // micro-batcher vs. per-request batch-1 submission, same engine
    // underneath. Each client is a thread in a submit-and-wait loop, so
    // offered load scales with concurrency and backpressure is natural.
    // The serving workload uses SERVE_SAMPLES-sample stream windows
    // (see the constant's docs for why they are longer than the 10 ms
    // kernel unit).
    println!(
        "\nserving throughput (closed-loop clients, {SERVE_SAMPLES}-sample windows, \
         fast backend behind pulp-hd-serve)\n"
    );
    let (serve_windows, _) = emg_windows(256, SERVE_SAMPLES);
    let mut serving_rows: Vec<ServingRow> = Vec::new();
    let mut serving_64 = None;
    // (adaptive w/s, batch-1 w/s) at 1 client — the solo-caller guard.
    let mut serving_1 = None;
    for clients in [1usize, 8, 64] {
        // Fixed total work per run, floor per client; best-of-3 on the
        // guarded comparison below rides out scheduler noise.
        let requests_per_client = (4096 / clients).max(64);
        let mut best: [Option<(f64, ServerStats)>; 2] = [None, None];
        for _rep in 0..3 {
            for (slot, config) in [adaptive_config(), batch1_config()].into_iter().enumerate() {
                let (wps, stats) = serving_run(
                    &model,
                    threads,
                    config,
                    clients,
                    requests_per_client,
                    &serve_windows,
                );
                if best[slot].as_ref().is_none_or(|(b, _)| wps > *b) {
                    best[slot] = Some((wps, stats));
                }
            }
        }
        let [adaptive, batch1] = best.map(|b| b.expect("measured"));
        println!(
            "  {clients:>2} client(s): adaptive {:>9.0} w/s (p50 {:>5} µs, p99 {:>6} µs, \
             mean batch {:>4.1})   batch-1 {:>9.0} w/s (p99 {:>6} µs)\n",
            adaptive.0,
            adaptive.1.p50_us,
            adaptive.1.p99_us,
            adaptive.1.mean_batch,
            batch1.0,
            batch1.1.p99_us
        );
        if clients == 1 {
            serving_1 = Some((adaptive.0, batch1.0));
        }
        if clients == 64 {
            serving_64 = Some((adaptive.0, adaptive.1.clone(), batch1.0));
        }
        serving_rows.push(ServingRow {
            clients,
            mode: "adaptive",
            windows_per_sec: adaptive.0,
            stats: adaptive.1,
        });
        serving_rows.push(ServingRow {
            clients,
            mode: "batch1",
            windows_per_sec: batch1.0,
            stats: batch1.1,
        });
    }

    // Wire serving: the same adaptive server behind the network
    // front-end, closed-loop `NetClient` threads over loopback TCP and
    // a Unix-domain socket. Each request pays a full encode → frame →
    // syscall → decode round trip, so the sweep prices the wire tax
    // against the in-process rows above; the guard below keeps the UDS
    // path within 2x of in-process at 64 clients on multi-core hosts.
    println!(
        "\nwire serving throughput (closed-loop NetClients, {SERVE_SAMPLES}-sample windows, \
         loopback TCP and UDS through pulp-hd-serve::net)\n"
    );
    let mut net_serving_rows: Vec<NetServingRow> = Vec::new();
    let mut net_uds_64 = None;
    for transport in ["tcp", "uds"] {
        for clients in [1usize, 8, 64] {
            // Lighter fixed work than the in-process sweep: every
            // request is a real socket round trip.
            let requests_per_client = (2048 / clients).max(32);
            let mut best: Option<(f64, ServerStats)> = None;
            for _rep in 0..3 {
                let (wps, stats) = net_serving_run(
                    &model,
                    threads,
                    adaptive_config(),
                    transport,
                    clients,
                    requests_per_client,
                    &serve_windows,
                );
                if best.as_ref().is_none_or(|(b, _)| wps > *b) {
                    best = Some((wps, stats));
                }
            }
            let (wps, stats) = best.expect("measured");
            println!(
                "  {transport} {clients:>2} client(s): {wps:>9.0} w/s \
                 (p50 {:>5} µs, p99 {:>6} µs, mean batch {:>4.1})\n",
                stats.p50_us, stats.p99_us, stats.mean_batch
            );
            if transport == "uds" && clients == 64 {
                net_uds_64 = Some(wps);
            }
            net_serving_rows.push(NetServingRow {
                clients,
                transport,
                windows_per_sec: wps,
                stats,
            });
        }
    }

    // Sharding: the same classify / train / serve workloads through
    // `ShardedBackend`, sweeping the shard count. `ShardedBackend::fast`
    // splits the machine's thread budget across the shards, so the
    // sweep measures fan-out shape (one big pool vs. N smaller
    // sessions), not extra hardware.
    println!(
        "\nsharding throughput (ShardedBackend over the fast engine, \
         machine thread budget split across shards)\n"
    );
    let mut sharding_rows: Vec<ShardRow> = Vec::new();
    let mut serving_sharded_2 = None;
    for shards in [1usize, 2, 4] {
        let iters = 8u32;
        let mut batch_session = ShardedBackend::fast(ShardSpec::Batch(shards))
            .and_then(|b| b.prepare_sharded(&model))
            .expect("batch-sharded prepare");
        let bs = bench(&format!("shard/batch-{shards}/classify256"), iters, || {
            batch_session.classify_batch(&windows).unwrap()
        });
        let mut class_session = ShardedBackend::fast(ShardSpec::Class(shards))
            .and_then(|b| b.prepare_sharded(&model))
            .expect("class-sharded prepare");
        let cs = bench(&format!("shard/class-{shards}/classify256"), iters, || {
            class_session.classify_batch(&windows).unwrap()
        });
        let mut train_session = ShardedBackend::fast(ShardSpec::Batch(shards))
            .expect("sharded backend")
            .begin_training(&spec)
            .expect("sharded training session");
        let ts = bench(&format!("shard/batch-{shards}/train256"), iters, || {
            train_session.reset();
            train_session.train_batch(&windows, &labels).unwrap();
        });
        // Closed-loop serving on the sharded session: same 64-client
        // sweep as the single-session bench, best-of-3.
        let clients = 64usize;
        let requests_per_client = (4096 / clients).max(64);
        let mut serve_best: Option<(f64, ServerStats)> = None;
        for _rep in 0..3 {
            let (wps, stats) = serving_run_sharded(
                &model,
                shards,
                adaptive_config(),
                clients,
                requests_per_client,
                &serve_windows,
            );
            if serve_best.as_ref().is_none_or(|(b, _)| wps > *b) {
                serve_best = Some((wps, stats));
            }
        }
        let (serve_wps, serve_stats) = serve_best.expect("measured");
        assert_eq!(
            serve_stats.shard_windows.len(),
            shards,
            "sharded server must report per-shard traffic"
        );
        assert_eq!(
            serve_stats.shard_windows.iter().sum::<u64>(),
            (clients * requests_per_client) as u64,
            "batch-sharded per-shard traffic must sum to the total"
        );
        if shards == 2 {
            serving_sharded_2 = Some(serve_wps);
        }

        let wps = |secs_per_batch: f64| windows.len() as f64 / secs_per_batch;
        let (b_wps, c_wps, t_wps) = (
            wps(bs.per_iter().as_secs_f64()),
            wps(cs.per_iter().as_secs_f64()),
            wps(ts.per_iter().as_secs_f64()),
        );
        println!(
            "  {shards} shard(s): batch-classify {b_wps:>9.0} w/s   class-classify \
             {c_wps:>9.0} w/s   train {t_wps:>9.0} w/s   serving×64 {serve_wps:>9.0} w/s \
             (shard windows {:?})\n",
            serve_stats.shard_windows
        );
        sharding_rows.push(ShardRow {
            shards,
            strategy: "batch",
            workload: "classify256",
            windows_per_sec: b_wps,
        });
        sharding_rows.push(ShardRow {
            shards,
            strategy: "class",
            workload: "classify256",
            windows_per_sec: c_wps,
        });
        sharding_rows.push(ShardRow {
            shards,
            strategy: "batch",
            workload: "train256",
            windows_per_sec: t_wps,
        });
        sharding_rows.push(ShardRow {
            shards,
            strategy: "batch",
            workload: "serving64",
            windows_per_sec: serve_wps,
        });
    }

    println!(
        "\nper-kernel microbenchmarks (dispatched level: {})",
        Simd::active().name()
    );
    let kernels = kernel_microbench();

    let (golden_t, fast_t) = headline.expect("batch 256 measured");
    let speedup = golden_t / fast_t;
    println!("\nfast backend ({threads} threads, batch 256) vs looped golden: {speedup:.2}x");
    let (tg_t, tf_t) = train_headline.expect("training batch 256 measured");
    let train_speedup = tg_t / tf_t;
    println!(
        "fast training ({threads} threads, batch 256) vs golden training: {train_speedup:.2}x"
    );
    let (serve_adaptive_wps, serve_adaptive_stats, serve_batch1_wps) =
        serving_64.expect("64-client serving measured");
    let serving_speedup = serve_adaptive_wps / serve_batch1_wps;
    println!(
        "adaptive serving (64 closed-loop clients) vs batch-1 submission: {serving_speedup:.2}x"
    );
    let serving_sharded_wps = serving_sharded_2.expect("2-shard serving measured");
    let serving_speedup_sharded = serving_sharded_wps / serve_adaptive_wps;
    println!(
        "2-shard serving (64 closed-loop clients) vs single-session server: \
         {serving_speedup_sharded:.2}x"
    );
    let net_uds_64_wps = net_uds_64.expect("64-client UDS wire serving measured");
    let net_serving_ratio = net_uds_64_wps / serve_adaptive_wps;
    println!(
        "wire serving over UDS (64 closed-loop clients) vs in-process adaptive: \
         {net_serving_ratio:.2}x"
    );
    let (cliff_full, cliff_pruned) = pruned_cliff.expect("batch 256 measured");
    println!(
        "pruned-scan cliff at batch 256: fast/mt {cliff_full:.0} w/s vs fast-pruned/mt \
         {cliff_pruned:.0} w/s ({:.2}x — large batches belong on ScanPolicy::Full)",
        cliff_pruned / cliff_full
    );
    write_json(
        &params,
        threads,
        &rows,
        &training_rows,
        &serving_rows,
        &net_serving_rows,
        &sharding_rows,
        &kernels,
        speedup,
        train_speedup,
        serving_speedup,
        serving_speedup_sharded,
        net_serving_ratio,
        (cliff_full, cliff_pruned),
        (contained_wps, uncontained_wps, containment_ratio),
        &approx_report,
    );
    assert!(
        speedup > 1.0,
        "multi-threaded fast backend must beat the looped golden baseline, got {speedup:.2}x"
    );
    assert!(
        train_speedup > 1.0,
        "multi-threaded fast training must beat golden training, got {train_speedup:.2}x"
    );
    // The adaptive fan-out guards: with the persistent pools and the
    // small-batch cutover, the threaded paths must never fall
    // meaningfully behind the single-threaded ones at any batch size.
    // On a narrow host (< 4 CPUs) the pool has nothing to fan out to
    // and a threaded "win" is pure scheduling luck, so — like the
    // serving guards below — the 0.95 parity floor relaxes to 0.85
    // there (the multi-core CI runner enforces the real floor; the
    // committed baseline itself records 0.92x for train/fast-mt at
    // batch 1 on the 1-CPU container).
    let cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let parity_floor = if cpus >= 4 { 0.95 } else { 0.85 };
    for (batch, f1_wps, fm_wps) in mt_ratios {
        assert!(
            fm_wps >= parity_floor * f1_wps,
            "fast/mt regressed below fast/1thread at batch {batch}: \
             {fm_wps:.0} w/s vs {f1_wps:.0} w/s (floor {parity_floor}x)"
        );
    }
    for (batch, f1_wps, fm_wps) in train_mt_ratios {
        assert!(
            fm_wps >= parity_floor * f1_wps,
            "train/fast-mt regressed below train/fast-1thread at batch {batch}: \
             {fm_wps:.0} w/s vs {f1_wps:.0} w/s (floor {parity_floor}x)"
        );
    }
    // The fault-tolerance budget: panic containment may cost at most 5%
    // of healthy-path throughput (interleaved within-run comparison, so
    // the floor holds on any machine).
    assert!(
        containment_ratio >= 0.95,
        "panic containment exceeded its 5% healthy-path budget: contained \
         {contained_wps:.0} w/s vs uncontained {uncontained_wps:.0} w/s \
         ({containment_ratio:.2}x, floor 0.95x)"
    );
    // The serving guards. (1) Throughput: under heavy concurrency the
    // micro-batcher must clearly beat per-request submission through
    // the identical machinery — the whole reason the serving layer
    // exists. Batching wins by fanning each batch's service across the
    // backend's worker pool, so — like the thread-scaling guards above
    // (see ROADMAP) — the 2x claim needs cores to fan out to: with
    // fewer than 4 the pool caps at 1–3 participants and the
    // theoretical service speedup cannot clear 2x reliably (on a
    // single-CPU host the pool has zero workers and service is serial
    // either way), so the guard degrades to "adaptive batching must
    // not be meaningfully worse than per-request submission".
    if cpus >= 4 {
        assert!(
            serving_speedup >= 2.0,
            "adaptive serving must sustain >= 2x batch-1 submission at 64 clients, \
             got {serving_speedup:.2}x ({serve_adaptive_wps:.0} vs {serve_batch1_wps:.0} w/s)"
        );
    } else {
        println!(
            "{cpus}-CPU host: serving speedup guard relaxed to parity \
             (the >= 2x fan-out claim is enforced on the multi-core CI runner)"
        );
        assert!(
            serving_speedup >= 0.85,
            "adaptive serving regressed below batch-1 submission at 64 clients on a \
             {cpus}-CPU host: {serving_speedup:.2}x"
        );
    }
    // (1b) The solo-caller fast path: a lone closed-loop client must
    // not pay an adaptive-batching tax — the batcher skips the
    // cooperative yield-fill rounds when the queue was empty at
    // batch-open, so adaptive stays within 5% of batch-1 submission
    // even with nobody to batch with.
    let (solo_adaptive_wps, solo_batch1_wps) = serving_1.expect("1-client serving measured");
    assert!(
        solo_adaptive_wps >= 0.95 * solo_batch1_wps,
        "a lone client must not pay an adaptive-batching tax: adaptive \
         {solo_adaptive_wps:.0} w/s vs batch-1 {solo_batch1_wps:.0} w/s at 1 client"
    );
    // (1c) Sharded serving: with cores to shard across, fanning the
    // serving path out over two sessions must clearly beat the single
    // big session at 64 clients (two batches in flight instead of one,
    // each on half the pool). On a narrow host the shards time-slice
    // the same cores, so the guard degrades to "sharding must not be
    // meaningfully worse than the single session".
    if cpus >= 4 {
        assert!(
            serving_speedup_sharded >= 1.3,
            "2-shard serving must sustain >= 1.3x the single-session server at 64 \
             clients, got {serving_speedup_sharded:.2}x ({serving_sharded_wps:.0} vs \
             {serve_adaptive_wps:.0} w/s)"
        );
    } else {
        println!(
            "{cpus}-CPU host: sharded serving guard relaxed to parity \
             (the >= 1.3x fan-out claim is enforced on the multi-core CI runner)"
        );
        assert!(
            serving_speedup_sharded >= 0.85,
            "2-shard serving regressed below the single-session server at 64 clients \
             on a {cpus}-CPU host: {serving_speedup_sharded:.2}x"
        );
    }
    // (1d) The wire tax: serving over a Unix-domain socket at 64
    // clients — every request paying encode → frame → syscall → decode
    // both ways — must hold at least half the in-process adaptive
    // throughput. With enough cores the reader/responder threads and
    // the batcher overlap, so loopback framing cannot legitimately
    // halve throughput; a miss means the net layer grew a serialization
    // bottleneck. On narrow hosts the per-connection threads contend
    // with the worker pool for the same cores, so the guard degrades to
    // a sanity floor.
    if cpus >= 4 {
        assert!(
            net_serving_ratio >= 0.5,
            "UDS wire serving must hold >= 0.5x in-process adaptive at 64 clients, \
             got {net_serving_ratio:.2}x ({net_uds_64_wps:.0} vs {serve_adaptive_wps:.0} w/s)"
        );
    } else {
        println!(
            "{cpus}-CPU host: wire serving guard relaxed \
             (the >= 0.5x floor is enforced on the multi-core CI runner)"
        );
        assert!(
            net_serving_ratio >= 0.1,
            "UDS wire serving collapsed on a {cpus}-CPU host: {net_serving_ratio:.2}x \
             ({net_uds_64_wps:.0} vs {serve_adaptive_wps:.0} w/s)"
        );
    }
    // The pruned-scan cliff floor: Pruned trades large-batch throughput
    // for single-window latency (see `ScanPolicy::Pruned`'s docs), and
    // the recorded cliff sits near 0.5x at batch 256. Guard the floor
    // so the documented trade-off cannot silently deepen past ~3x.
    assert!(
        cliff_pruned >= 0.35 * cliff_full,
        "the pruned-scan cliff deepened: fast-pruned/mt {cliff_pruned:.0} w/s vs \
         fast/mt {cliff_full:.0} w/s at batch 256 ({:.2}x, floor 0.35x)",
        cliff_pruned / cliff_full
    );
    // The approximate-ladder guards — both within-run interleaved
    // comparisons, so machine-independent. (1) On the repeated-window
    // stream the best approximate rung must clearly beat the exact
    // scan: the whole reason the ladder exists.
    let approx_best = approx_report
        .threshold_wps
        .max(approx_report.cached_wps)
        .max(approx_report.cached_threshold_wps);
    let approx_ratio = approx_best / approx_report.exact_wps;
    assert!(
        approx_ratio >= 1.3,
        "the approximate ladder must reach >= 1.3x the exact scan on the repeated-window \
         stream at batch 256, got {approx_ratio:.2}x (exact {:.0} w/s, best rung \
         {approx_best:.0} w/s)",
        approx_report.exact_wps
    );
    // (2) The default path pays nothing for the new knob: the
    // explicitly-Exact session must stay within 2% of the plain
    // fast/mt session it is code-identical to — the within-run
    // restatement of "Exact within 0.98x of the recorded fast/mt
    // baseline" (the plain side here is the same session and protocol
    // that produced the baseline row).
    let exact_policy_ratio = approx_report.exact_policy_wps / approx_report.plain_fast_wps;
    assert!(
        exact_policy_ratio >= 0.98,
        "ApproxPolicy::Exact taxed the default path: {:.0} w/s vs plain fast/mt {:.0} w/s \
         ({exact_policy_ratio:.3}x, floor 0.98x)",
        approx_report.exact_policy_wps,
        approx_report.plain_fast_wps
    );
    // (3) The tuner's pick holds its floor (`tune_dimension` already
    // fails the run outright if even the base width misses it).
    assert!(
        approx_report.tuner_accuracy >= approx_report.tuner_floor,
        "the tuned model missed its accuracy floor: {:.3} < {:.2} at {} words",
        approx_report.tuner_accuracy,
        approx_report.tuner_floor,
        approx_report.tuner_selected_words
    );
    // (2) Tail latency: the batcher's structural worst case for an
    // accepted request is bounded — land just after a batch closes and
    // you ride out that batch's service, then your own batch's fill
    // window (≤ max_delay) and service. p99 must stay inside
    // `max_delay + 2 × batch service` (worst observed batch service as
    // the service bound, +25% headroom for scheduler jitter on shared
    // runners) — i.e. batching never buys throughput with unbounded
    // queueing delay.
    let p99_bound_us = adaptive_config().max_delay.as_micros() as u64
        + 2 * serve_adaptive_stats.batch_service_max_us;
    assert!(
        serve_adaptive_stats.p99_us <= p99_bound_us + p99_bound_us / 4,
        "adaptive serving p99 ({} µs) exceeded its structural envelope of max_delay + \
         two batches' service time ({} µs bound, worst batch service {} µs)",
        serve_adaptive_stats.p99_us,
        p99_bound_us + p99_bound_us / 4,
        serve_adaptive_stats.batch_service_max_us
    );
}
