//! Benchmarks backing the figure sweeps: simulation throughput across
//! the dimension (Fig. 3), core-count (Fig. 4) and channel (Fig. 5)
//! axes, at reduced scale.
//!
//! Run with: `cargo bench -p pulp-hd-bench --bench figures`

use std::hint::black_box;

use pulp_hd_bench::timing::bench;
use pulp_hd_core::experiments::measure_chain;
use pulp_hd_core::layout::AccelParams;
use pulp_hd_core::platform::Platform;

fn bench_dimension_axis() {
    for words in [32usize, 125] {
        let params = AccelParams {
            n_words: words,
            ..AccelParams::emg_default()
        };
        bench(&format!("fig3_dimension/{}", words * 32), 10, || {
            measure_chain(black_box(&Platform::wolf_builtin(8)), params).unwrap()
        });
    }
}

fn bench_core_axis() {
    for cores in [1usize, 8] {
        let params = AccelParams {
            n_words: 79,
            ngram: 3,
            ..AccelParams::emg_default()
        };
        bench(&format!("fig4_cores/{cores}"), 10, || {
            measure_chain(black_box(&Platform::wolf_builtin(cores)), params).unwrap()
        });
    }
}

fn bench_channel_axis() {
    for channels in [4usize, 32] {
        let params = AccelParams {
            n_words: 79,
            channels,
            ..AccelParams::emg_default()
        };
        bench(&format!("fig5_channels/{channels}"), 10, || {
            measure_chain(black_box(&Platform::wolf_builtin(8)), params).unwrap()
        });
    }
}

fn main() {
    bench_dimension_axis();
    bench_core_axis();
    bench_channel_axis();
}
