//! Criterion benchmarks backing the figure sweeps: simulation throughput
//! across the dimension (Fig. 3), core-count (Fig. 4) and channel
//! (Fig. 5) axes, at reduced scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use pulp_hd_core::experiments::measure_chain;
use pulp_hd_core::layout::AccelParams;
use pulp_hd_core::platform::Platform;

fn bench_dimension_axis(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_dimension");
    group.sample_size(10);
    for words in [32usize, 125] {
        let params = AccelParams { n_words: words, ..AccelParams::emg_default() };
        group.bench_with_input(BenchmarkId::from_parameter(words * 32), &params, |b, p| {
            b.iter(|| measure_chain(black_box(&Platform::wolf_builtin(8)), *p).unwrap())
        });
    }
    group.finish();
}

fn bench_core_axis(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_cores");
    group.sample_size(10);
    for cores in [1usize, 8] {
        let params = AccelParams { n_words: 79, ngram: 3, ..AccelParams::emg_default() };
        group.bench_with_input(BenchmarkId::from_parameter(cores), &params, |b, p| {
            b.iter(|| measure_chain(black_box(&Platform::wolf_builtin(cores)), *p).unwrap())
        });
    }
    group.finish();
}

fn bench_channel_axis(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_channels");
    group.sample_size(10);
    for channels in [4usize, 32] {
        let params = AccelParams { n_words: 79, channels, ..AccelParams::emg_default() };
        group.bench_with_input(BenchmarkId::from_parameter(channels), &params, |b, p| {
            b.iter(|| measure_chain(black_box(&Platform::wolf_builtin(8)), *p).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dimension_axis, bench_core_axis, bench_channel_axis);
criterion_main!(benches);
