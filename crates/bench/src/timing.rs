//! Minimal wall-clock measurement for the `harness = false` benches.
//!
//! Deliberately simple: a short warm-up, one timed loop, mean time per
//! iteration. Good enough to compare implementations on the same
//! machine in the same run, which is all the benches here do.

use std::time::{Duration, Instant};

/// Result of one measured benchmark.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark label.
    pub name: String,
    /// Timed iterations.
    pub iters: u32,
    /// Total wall-clock over all timed iterations.
    pub total: Duration,
}

impl Measurement {
    /// Mean wall-clock per iteration.
    #[must_use]
    pub fn per_iter(&self) -> Duration {
        self.total / self.iters
    }

    /// Iterations per second.
    #[must_use]
    pub fn rate(&self) -> f64 {
        f64::from(self.iters) / self.total.as_secs_f64()
    }
}

/// Times `f` over `iters` iterations after `iters / 10 + 1` warm-up
/// runs, prints one aligned report line, and returns the measurement.
///
/// Wrap inputs in [`std::hint::black_box`] at the call site when the
/// computation could otherwise be hoisted.
pub fn bench<R>(name: &str, iters: u32, mut f: impl FnMut() -> R) -> Measurement {
    assert!(iters > 0, "benchmark needs at least one iteration");
    for _ in 0..(iters / 10 + 1) {
        std::hint::black_box(f());
    }
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let total = start.elapsed();
    let m = Measurement {
        name: name.to_string(),
        iters,
        total,
    };
    println!(
        "{:40} {:>12} /iter   ({} iters)",
        m.name,
        format_duration(m.per_iter()),
        m.iters
    );
    m
}

/// Renders a duration with a unit fitting its magnitude.
#[must_use]
pub fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", d.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        let mut runs = 0u32;
        let m = bench("noop", 10, || {
            runs += 1;
        });
        assert_eq!(m.iters, 10);
        assert!(runs >= 10, "timed loop must run");
        assert!(m.rate() > 0.0);
    }

    #[test]
    fn duration_formatting_scales() {
        assert_eq!(format_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(format_duration(Duration::from_micros(12)), "12.00 µs");
        assert_eq!(format_duration(Duration::from_millis(12)), "12.00 ms");
        assert_eq!(format_duration(Duration::from_secs(12)), "12.00 s");
    }
}
