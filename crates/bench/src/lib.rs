//! # `pulp-hd-bench` — benchmark harness
//!
//! One binary per table/figure of the paper (`table1`, `table2`,
//! `table3`, `fig3`, `fig4`, `fig5`, `accuracy`, `ablation`, and `all`),
//! each printing the regenerated result next to the paper's published
//! numbers, plus micro-benchmarks over the native HDC operations, the
//! simulated kernels, and the execution backends' batch throughput
//! (`benches/throughput.rs`).
//!
//! Run e.g. `cargo run --release -p pulp-hd-bench --bin table3`, or
//! `cargo bench -p pulp-hd-bench` for the micro-benchmarks.
//!
//! The [`timing`] module is a dependency-free stand-in for a bench
//! framework: the build environment is offline, so measurement is a
//! plain warm-up + timed-loop harness with wall-clock reporting.

pub mod timing;
