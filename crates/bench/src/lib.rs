//! # `pulp-hd-bench` — benchmark harness
//!
//! One binary per table/figure of the paper (`table1`, `table2`,
//! `table3`, `fig3`, `fig4`, `fig5`, `accuracy`, `ablation`, and `all`),
//! each printing the regenerated result next to the paper's published
//! numbers, plus Criterion micro-benchmarks over the native HDC
//! operations and the simulated kernels.
//!
//! Run e.g. `cargo run --release -p pulp-hd-bench --bin table3`.
