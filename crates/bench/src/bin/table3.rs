//! Regenerates Table 3 (PULPv3 vs Wolf, per-kernel cycles and speed-ups).

fn main() {
    let table = pulp_hd_core::experiments::table3::run().expect("table 3");
    println!("{}", table.render());
}
