//! Regenerates Fig. 5 (channel scaling: cycles, memory, latency).

fn main() {
    let fig = pulp_hd_core::experiments::fig5::run().expect("fig 5");
    println!("{}", fig.render());
}
