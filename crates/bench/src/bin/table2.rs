//! Regenerates Table 2 (power on ARM Cortex M4 vs PULPv3).

fn main() {
    let table = pulp_hd_core::experiments::table2::run().expect("table 2");
    println!("{}", table.render());
}
