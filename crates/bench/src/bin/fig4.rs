//! Regenerates Fig. 4 (multi-core scaling for N-grams 1..10).

fn main() {
    let fig = pulp_hd_core::experiments::fig4::run().expect("fig 4");
    println!("{}", fig.render());
}
