//! Runs the fault-injection robustness study (graceful degradation of
//! the AM under faulty memory cells).

fn main() {
    let r = pulp_hd_core::experiments::robustness::run(false);
    println!("{}", r.render());
}
