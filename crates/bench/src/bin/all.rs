//! Runs every experiment in paper order and prints the complete
//! paper-vs-measured report.

use pulp_hd_core::experiments as exp;

fn main() {
    println!("PULP-HD reproduction — full experiment suite\n");
    let t3 = exp::table3::run().expect("table 3");
    println!("{}\n", t3.render());
    let t2 = exp::table2::run().expect("table 2");
    println!("{}\n", t2.render());
    let t1 = exp::table1::run(false).expect("table 1");
    println!("{}\n", t1.render());
    let f3 = exp::fig3::run().expect("fig 3");
    println!("{}\n", f3.render());
    let f4 = exp::fig4::run().expect("fig 4");
    println!("{}\n", f4.render());
    let f5 = exp::fig5::run().expect("fig 5");
    println!("{}\n", f5.render());
    let acc = exp::accuracy::run(&exp::accuracy::AccuracyConfig::paper());
    println!("{}\n", acc.render());
    let abl = exp::ablation::run().expect("ablation");
    println!("{}\n", abl.render());
    let rob = exp::robustness::run(false);
    println!("{}", rob.render());
}
