//! Runs the §4.1 accuracy study (HD vs SVM, dimensionality sweep).

use pulp_hd_core::experiments::accuracy::{run, AccuracyConfig};

fn main() {
    let report = run(&AccuracyConfig::paper());
    println!("{}", report.render());
}
