//! Runs the ablation study (memory policies, ISA lowering).

fn main() {
    let ablation = pulp_hd_core::experiments::ablation::run().expect("ablation");
    println!("{}", ablation.render());
}
