//! Regenerates Table 1 (HD 200-D vs SVM on the ARM Cortex M4).

fn main() {
    let table = pulp_hd_core::experiments::table1::run(false).expect("table 1");
    println!("{}", table.render());
}
