//! Regenerates Fig. 3 (cycles vs dimension for several N-gram sizes).

fn main() {
    let fig = pulp_hd_core::experiments::fig3::run().expect("fig 3");
    println!("{}", fig.render());
}
