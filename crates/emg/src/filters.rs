//! IIR biquad filters for EMG preprocessing.
//!
//! The paper's preprocessing chain — power-line interference removal and
//! envelope extraction — runs *before* the accelerated kernels and is
//! excluded from cycle counts; it is nonetheless implemented here so the
//! synthetic pipeline exercises the same signal path a real deployment
//! would: a 50 Hz notch, rectification, and a low-pass envelope follower.
//!
//! Filters are direct-form-I biquads with coefficients from the standard
//! RBJ audio-EQ cookbook formulas.

use core::f64::consts::PI;

/// A single biquad section (direct form I).
///
/// # Examples
///
/// ```
/// use emg::filters::Biquad;
///
/// // DC passes a low-pass filter unchanged (after settling).
/// let mut lp = Biquad::low_pass(500.0, 5.0, 0.707);
/// let mut last = 0.0;
/// for _ in 0..2000 {
///     last = lp.process(1.0);
/// }
/// assert!((last - 1.0).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Biquad {
    b0: f64,
    b1: f64,
    b2: f64,
    a1: f64,
    a2: f64,
    x1: f64,
    x2: f64,
    y1: f64,
    y2: f64,
}

impl Biquad {
    /// Creates a biquad from normalized coefficients (`a0` already divided
    /// out).
    #[must_use]
    pub fn from_coefficients(b0: f64, b1: f64, b2: f64, a1: f64, a2: f64) -> Self {
        Self {
            b0,
            b1,
            b2,
            a1,
            a2,
            x1: 0.0,
            x2: 0.0,
            y1: 0.0,
            y2: 0.0,
        }
    }

    /// Second-order low-pass (RBJ cookbook).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < cutoff_hz < fs_hz / 2` and `q > 0`.
    #[must_use]
    pub fn low_pass(fs_hz: f64, cutoff_hz: f64, q: f64) -> Self {
        assert!(
            cutoff_hz > 0.0 && cutoff_hz < fs_hz / 2.0,
            "cutoff out of range"
        );
        assert!(q > 0.0, "q must be positive");
        let w0 = 2.0 * PI * cutoff_hz / fs_hz;
        let alpha = w0.sin() / (2.0 * q);
        let cos_w0 = w0.cos();
        let a0 = 1.0 + alpha;
        Self::from_coefficients(
            ((1.0 - cos_w0) / 2.0) / a0,
            (1.0 - cos_w0) / a0,
            ((1.0 - cos_w0) / 2.0) / a0,
            (-2.0 * cos_w0) / a0,
            (1.0 - alpha) / a0,
        )
    }

    /// Second-order high-pass (RBJ cookbook).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < cutoff_hz < fs_hz / 2` and `q > 0`.
    #[must_use]
    pub fn high_pass(fs_hz: f64, cutoff_hz: f64, q: f64) -> Self {
        assert!(
            cutoff_hz > 0.0 && cutoff_hz < fs_hz / 2.0,
            "cutoff out of range"
        );
        assert!(q > 0.0, "q must be positive");
        let w0 = 2.0 * PI * cutoff_hz / fs_hz;
        let alpha = w0.sin() / (2.0 * q);
        let cos_w0 = w0.cos();
        let a0 = 1.0 + alpha;
        Self::from_coefficients(
            ((1.0 + cos_w0) / 2.0) / a0,
            (-(1.0 + cos_w0)) / a0,
            ((1.0 + cos_w0) / 2.0) / a0,
            (-2.0 * cos_w0) / a0,
            (1.0 - alpha) / a0,
        )
    }

    /// Notch filter centred at `f0_hz` with the given quality factor.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < f0_hz < fs_hz / 2` and `q > 0`.
    #[must_use]
    pub fn notch(fs_hz: f64, f0_hz: f64, q: f64) -> Self {
        assert!(
            f0_hz > 0.0 && f0_hz < fs_hz / 2.0,
            "notch frequency out of range"
        );
        assert!(q > 0.0, "q must be positive");
        let w0 = 2.0 * PI * f0_hz / fs_hz;
        let alpha = w0.sin() / (2.0 * q);
        let cos_w0 = w0.cos();
        let a0 = 1.0 + alpha;
        Self::from_coefficients(
            1.0 / a0,
            (-2.0 * cos_w0) / a0,
            1.0 / a0,
            (-2.0 * cos_w0) / a0,
            (1.0 - alpha) / a0,
        )
    }

    /// Processes one sample.
    pub fn process(&mut self, x: f64) -> f64 {
        let y = self.b0 * x + self.b1 * self.x1 + self.b2 * self.x2
            - self.a1 * self.y1
            - self.a2 * self.y2;
        self.x2 = self.x1;
        self.x1 = x;
        self.y2 = self.y1;
        self.y1 = y;
        y
    }

    /// Resets the filter state (coefficients kept).
    pub fn reset(&mut self) {
        self.x1 = 0.0;
        self.x2 = 0.0;
        self.y1 = 0.0;
        self.y2 = 0.0;
    }

    /// Filters a whole buffer from a fresh state.
    #[must_use]
    pub fn filter(&self, signal: &[f64]) -> Vec<f64> {
        let mut f = *self;
        f.reset();
        signal.iter().map(|&x| f.process(x)).collect()
    }
}

/// Envelope follower: rectify then low-pass.
///
/// # Examples
///
/// ```
/// use emg::filters::Envelope;
///
/// let mut env = Envelope::new(500.0, 3.0);
/// // A constant-amplitude oscillation has a flat envelope.
/// let mut last = 0.0;
/// for t in 0..5000 {
///     let x = (t as f64 * 0.9).sin() * 2.0;
///     last = env.process(x);
/// }
/// assert!(last > 0.5 && last < 2.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Envelope {
    lp: Biquad,
}

impl Envelope {
    /// Creates an envelope follower with the given smoothing cutoff.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < cutoff_hz < fs_hz / 2`.
    #[must_use]
    pub fn new(fs_hz: f64, cutoff_hz: f64) -> Self {
        Self {
            lp: Biquad::low_pass(fs_hz, cutoff_hz, core::f64::consts::FRAC_1_SQRT_2),
        }
    }

    /// Processes one sample (rectification + smoothing).
    pub fn process(&mut self, x: f64) -> f64 {
        // The low-pass of |x| tracks mean absolute amplitude; clamp tiny
        // numerical undershoot so envelopes stay non-negative.
        self.lp.process(x.abs()).max(0.0)
    }

    /// Resets the follower state.
    pub fn reset(&mut self) {
        self.lp.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(fs: f64, f: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (2.0 * PI * f * i as f64 / fs).sin())
            .collect()
    }

    fn rms(signal: &[f64]) -> f64 {
        (signal.iter().map(|x| x * x).sum::<f64>() / signal.len() as f64).sqrt()
    }

    #[test]
    fn notch_kills_50hz_keeps_100hz() {
        let fs = 500.0;
        let notch = Biquad::notch(fs, 50.0, 8.0);
        let hum = tone(fs, 50.0, 4000);
        let emg = tone(fs, 100.0, 4000);
        let hum_out = notch.filter(&hum);
        let emg_out = notch.filter(&emg);
        // Skip the transient.
        assert!(
            rms(&hum_out[1000..]) < 0.02,
            "hum survives: {}",
            rms(&hum_out[1000..])
        );
        assert!(
            rms(&emg_out[1000..]) > 0.6,
            "signal destroyed: {}",
            rms(&emg_out[1000..])
        );
    }

    #[test]
    fn low_pass_attenuates_high_frequencies() {
        let fs = 500.0;
        let lp = Biquad::low_pass(fs, 5.0, 0.707);
        let slow = tone(fs, 1.0, 4000);
        let fast = tone(fs, 100.0, 4000);
        assert!(rms(&lp.filter(&slow)[2000..]) > 0.6);
        assert!(rms(&lp.filter(&fast)[2000..]) < 0.01);
    }

    #[test]
    fn high_pass_removes_dc() {
        let fs = 500.0;
        let hp = Biquad::high_pass(fs, 20.0, 0.707);
        let dc = vec![1.0; 4000];
        assert!(rms(&hp.filter(&dc)[2000..]) < 1e-4);
        let fast = tone(fs, 100.0, 4000);
        assert!(rms(&hp.filter(&fast)[2000..]) > 0.6);
    }

    #[test]
    fn envelope_tracks_amplitude_modulation() {
        let fs = 500.0;
        let mut env = Envelope::new(fs, 3.0);
        // 1 s at amplitude 1, then 2 s at amplitude 5.
        let mut tail = 0.0;
        for i in 0..1500 {
            let amp = if i < 500 { 1.0 } else { 5.0 };
            let x = amp * (2.0 * PI * 113.0 * i as f64 / fs).sin();
            tail = env.process(x);
        }
        // Mean |sin| = 2/π ≈ 0.637; envelope of amp 5 ≈ 3.18.
        assert!((2.5..4.0).contains(&tail), "envelope {tail}");
    }

    #[test]
    fn envelope_is_nonnegative() {
        let mut env = Envelope::new(500.0, 3.0);
        for i in 0..2000 {
            let x = if i % 7 == 0 { -3.0 } else { 0.1 };
            assert!(env.process(x) >= 0.0);
        }
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut f = Biquad::low_pass(500.0, 5.0, 0.707);
        let a = f.process(1.0);
        f.reset();
        let b = f.process(1.0);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "cutoff out of range")]
    fn cutoff_above_nyquist_rejected() {
        let _ = Biquad::low_pass(500.0, 300.0, 0.7);
    }
}
