//! Synthetic surface-EMG generation.
//!
//! Stands in for the recorded 5-subject dataset of Rahimi et al. (2016)
//! that the paper evaluates on (see `DESIGN.md` §2 for the substitution
//! argument). The generative model keeps the properties the classifiers
//! actually exploit:
//!
//! * each gesture is a distinct *spatial pattern* of muscle activation
//!   across the forearm channels (what the spatial encoder keys on),
//! * gestures have onset/hold/release *temporal structure* (what the
//!   temporal encoder keys on),
//! * subjects differ systematically (electrode placement, physiology),
//!   trials differ randomly (effort level, tremor), and the raw signal is
//!   an amplitude-modulated stochastic carrier corrupted by 50 Hz mains
//!   interference and sensor noise — so the task is noisy enough that
//!   accuracy lives in the paper's 85–95 % regime rather than saturating.
//!
//! All randomness is derived from explicit seeds; the same
//! `(config, subject, trial)` triple always produces the same signal.

use hdc::rng::{derive_seed, Xoshiro256PlusPlus};

/// Names of the five classes (four gestures plus rest), in label order.
pub const GESTURE_NAMES: [&str; 5] = [
    "rest",
    "closed hand",
    "open hand",
    "2-finger pinch",
    "point index",
];

/// Parameters of the synthetic EMG task.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthConfig {
    /// Number of electrode channels.
    pub channels: usize,
    /// Sampling rate in Hz.
    pub fs_hz: f64,
    /// Length of one gesture trial in seconds.
    pub trial_secs: f64,
    /// Repetitions of each gesture per subject.
    pub reps: usize,
    /// Number of classes (including rest). Up to 5 use the calibrated
    /// hand-gesture patterns; more are generated procedurally.
    pub classes: usize,
    /// Std-dev of the per-subject perturbation of activation patterns.
    pub subject_sigma: f64,
    /// Std-dev of the per-trial overall effort scaling.
    pub trial_jitter: f64,
    /// Std-dev of the per-trial, per-channel activation-pattern
    /// perturbation (electrode shift, posture, fatigue) — the main
    /// driver of realistic confusability between gestures.
    pub trial_pattern_sigma: f64,
    /// RMS of additive wide-band sensor noise, in millivolts.
    pub sensor_noise_mv: f64,
    /// Amplitude of 50 Hz mains interference, in millivolts.
    pub interference_mv: f64,
    /// Per-sample, per-channel probability that an electrode lift-off
    /// burst *starts* (the channel flatlines for a few samples).
    /// Majority bundling over the classification window absorbs short
    /// bursts; mean-envelope features do not — the robustness mechanism
    /// behind the paper's HD-vs-SVM gap.
    pub artifact_prob: f64,
    /// Envelope at maximum voluntary contraction, in millivolts (the
    /// paper's CIM spans 0–21 mV).
    pub max_mvc_mv: f64,
}

impl SynthConfig {
    /// The paper's EMG setup: 4 channels at 500 Hz, 3 s trials, 10
    /// repetitions, 5 classes.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            channels: 4,
            fs_hz: 500.0,
            trial_secs: 3.0,
            reps: 10,
            classes: 5,
            subject_sigma: 0.06,
            trial_jitter: 0.12,
            trial_pattern_sigma: 0.095,
            sensor_noise_mv: 1.0,
            interference_mv: 1.2,
            artifact_prob: 0.006,
            max_mvc_mv: 21.0,
        }
    }

    /// Same task with a different channel count (Fig. 5 scalability
    /// sweep).
    #[must_use]
    pub fn with_channels(mut self, channels: usize) -> Self {
        self.channels = channels;
        self
    }

    /// Samples per trial.
    #[must_use]
    pub fn samples_per_trial(&self) -> usize {
        (self.fs_hz * self.trial_secs).round() as usize
    }
}

/// Baseline activation of a resting muscle (fraction of MVC).
const REST_LEVEL: f64 = 0.04;

/// Calibrated activation patterns (fraction of MVC) of the four hand
/// gestures over the four forearm electrodes, label order matching
/// [`GESTURE_NAMES`] (index 0 = rest).
const BASE_PATTERNS: [[f64; 4]; 5] = [
    [REST_LEVEL, REST_LEVEL, REST_LEVEL, REST_LEVEL],
    [0.88, 0.62, 0.30, 0.18], // closed hand: flexors dominant
    [0.22, 0.80, 0.68, 0.28], // open hand: extensors dominant
    [0.55, 0.28, 0.78, 0.52], // 2-finger pinch
    [0.20, 0.42, 0.30, 0.85], // point index
];

/// Per-subject gesture activation model.
///
/// # Examples
///
/// ```
/// use emg::{GestureModel, SynthConfig};
///
/// let cfg = SynthConfig::paper();
/// let s0 = GestureModel::for_subject(&cfg, 0, 42);
/// let s1 = GestureModel::for_subject(&cfg, 1, 42);
/// // Subjects share gesture structure but differ in detail.
/// assert_ne!(s0.pattern(1), s1.pattern(1));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GestureModel {
    patterns: Vec<Vec<f64>>,
    channels: usize,
}

impl GestureModel {
    /// Builds the activation patterns of one subject.
    ///
    /// Subject identity perturbs the calibrated patterns (electrode
    /// placement, physiology); channel counts beyond the four calibrated
    /// electrodes get procedurally generated, gesture-specific patterns
    /// so the Fig. 5 sweep stays a meaningful classification task.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero channels or classes.
    #[must_use]
    pub fn for_subject(cfg: &SynthConfig, subject: usize, master_seed: u64) -> Self {
        assert!(cfg.channels > 0, "need at least one channel");
        assert!(cfg.classes >= 2, "need at least two classes");
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(derive_seed(
            master_seed,
            0x5EED_0000 + subject as u64,
        ));
        let mut patterns = Vec::with_capacity(cfg.classes);
        // Indexed loops: `g`/`c` select between the calibrated
        // BASE_PATTERNS table and the procedural fallback, so iterator
        // chaining would obscure the bounds conditions.
        #[allow(clippy::needless_range_loop)]
        for g in 0..cfg.classes {
            let mut p = Vec::with_capacity(cfg.channels);
            for c in 0..cfg.channels {
                let base = if g < BASE_PATTERNS.len() && c < 4 {
                    BASE_PATTERNS[g][c]
                } else if g == 0 {
                    REST_LEVEL
                } else {
                    // Procedural pattern: deterministic per (gesture,
                    // channel) but independent of subject, so all
                    // subjects share gesture structure.
                    let mut g_rng = Xoshiro256PlusPlus::seed_from_u64(derive_seed(
                        master_seed,
                        (0xBA5E_0000 + g as u64) << 16 | c as u64,
                    ));
                    0.15 + 0.75 * g_rng.next_f64()
                };
                let perturbed = base + cfg.subject_sigma * rng.next_normal();
                p.push(perturbed.clamp(0.02, 1.0));
            }
            patterns.push(p);
        }
        Self {
            patterns,
            channels: cfg.channels,
        }
    }

    /// The activation pattern (fraction of MVC per channel) of `gesture`.
    ///
    /// # Panics
    ///
    /// Panics if `gesture` is out of range.
    #[must_use]
    pub fn pattern(&self, gesture: usize) -> &[f64] {
        &self.patterns[gesture]
    }

    /// Number of gestures (classes).
    #[must_use]
    pub fn classes(&self) -> usize {
        self.patterns.len()
    }

    /// Number of channels.
    #[must_use]
    pub fn channels(&self) -> usize {
        self.channels
    }
}

/// Trapezoidal activation profile of a gesture trial: ramp up after a
/// rest lead-in, hold, ramp down to rest at the end.
///
/// Returns the activation fraction in `[0, 1]` at sample `i` of `n`.
#[must_use]
fn activation_profile(i: usize, n: usize, fs_hz: f64) -> f64 {
    let ramp = (0.25 * fs_hz) as usize; // 250 ms ramps
    let lead = (0.20 * fs_hz) as usize; // 200 ms rest lead-in
    let release = n - n / 10; // last 10% ramps down
    if i < lead {
        0.0
    } else if i < lead + ramp {
        (i - lead) as f64 / ramp as f64
    } else if i < release {
        1.0
    } else if i < release + ramp {
        1.0 - (i - release) as f64 / ramp as f64
    } else {
        0.0
    }
}

/// Synthesizes the raw (pre-filtering) EMG of one trial.
///
/// Returns `samples × channels` values in millivolts.
///
/// # Panics
///
/// Panics if `gesture` is out of range for the model.
///
/// # Examples
///
/// ```
/// use emg::{synthesize_trial, GestureModel, SynthConfig};
///
/// let cfg = SynthConfig::paper();
/// let model = GestureModel::for_subject(&cfg, 0, 7);
/// let raw = synthesize_trial(&cfg, &model, 1, 3);
/// assert_eq!(raw.len(), cfg.samples_per_trial());
/// assert_eq!(raw[0].len(), 4);
/// ```
#[must_use]
pub fn synthesize_trial(
    cfg: &SynthConfig,
    model: &GestureModel,
    gesture: usize,
    trial_seed: u64,
) -> Vec<Vec<f64>> {
    assert!(gesture < model.classes(), "gesture {gesture} out of range");
    let n = cfg.samples_per_trial();
    let mut rng =
        Xoshiro256PlusPlus::seed_from_u64(derive_seed(trial_seed, 0x7124_0000 + gesture as u64));
    // Per-trial effort scaling and tremor phase.
    let effort = (1.0 + cfg.trial_jitter * rng.next_normal()).clamp(0.6, 1.4);
    let tremor_hz = 1.1 + 0.8 * rng.next_f64();
    let tremor_phase = rng.next_f64() * core::f64::consts::TAU;
    let mains_phase = rng.next_f64() * core::f64::consts::TAU;

    // Mean |N(0,σ)| = σ·√(2/π): scale the carrier so the *envelope*
    // lands at pattern × MVC.
    let env_to_sigma = (core::f64::consts::PI / 2.0).sqrt();

    // Per-trial pattern perturbation: the same gesture never activates
    // the muscles identically twice.
    let pattern: Vec<f64> = model
        .pattern(gesture)
        .iter()
        .map(|&p| (p + cfg.trial_pattern_sigma * rng.next_normal()).clamp(0.02, 1.2))
        .collect();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let t = i as f64 / cfg.fs_hz;
        let a = activation_profile(i, n, cfg.fs_hz);
        let tremor = 1.0 + 0.10 * (core::f64::consts::TAU * tremor_hz * t + tremor_phase).sin();
        let mains = cfg.interference_mv * (core::f64::consts::TAU * 50.0 * t + mains_phase).sin();
        let mut sample = Vec::with_capacity(cfg.channels);
        for &p in pattern.iter() {
            let env_target = (REST_LEVEL + (p - REST_LEVEL) * a) * cfg.max_mvc_mv * effort * tremor;
            let sigma = env_target.max(0.0) * env_to_sigma;
            let carrier = sigma * rng.next_normal();
            let noise = cfg.sensor_noise_mv * rng.next_normal();
            sample.push(carrier + mains + noise);
        }
        out.push(sample);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trial_shape_and_determinism() {
        let cfg = SynthConfig::paper();
        let model = GestureModel::for_subject(&cfg, 0, 1);
        let a = synthesize_trial(&cfg, &model, 2, 5);
        let b = synthesize_trial(&cfg, &model, 2, 5);
        let c = synthesize_trial(&cfg, &model, 2, 6);
        assert_eq!(a.len(), 1500);
        assert_eq!(a, b, "same seed, same trial");
        assert_ne!(a, c, "different trial seeds differ");
    }

    #[test]
    fn gestures_have_distinct_patterns() {
        let cfg = SynthConfig::paper();
        let model = GestureModel::for_subject(&cfg, 0, 1);
        for g in 1..5 {
            for h in (g + 1)..5 {
                let d: f64 = model
                    .pattern(g)
                    .iter()
                    .zip(model.pattern(h))
                    .map(|(a, b)| (a - b).abs())
                    .sum();
                assert!(d > 0.4, "gestures {g},{h} too similar: {d}");
            }
        }
    }

    #[test]
    fn rest_is_low_everywhere() {
        let cfg = SynthConfig::paper();
        let model = GestureModel::for_subject(&cfg, 3, 1);
        assert!(model.pattern(0).iter().all(|&p| p < 0.25));
    }

    #[test]
    fn active_gesture_amplitude_exceeds_rest() {
        let cfg = SynthConfig::paper();
        let model = GestureModel::for_subject(&cfg, 0, 1);
        let fist = synthesize_trial(&cfg, &model, 1, 0);
        let rest = synthesize_trial(&cfg, &model, 0, 0);
        // Compare RMS on channel 0 during the hold phase.
        let rms = |trial: &[Vec<f64>]| {
            let hold = &trial[400..1200];
            (hold.iter().map(|s| s[0] * s[0]).sum::<f64>() / hold.len() as f64).sqrt()
        };
        assert!(
            rms(&fist) > 4.0 * rms(&rest),
            "fist {} rest {}",
            rms(&fist),
            rms(&rest)
        );
    }

    #[test]
    fn activation_profile_is_trapezoidal() {
        let fs = 500.0;
        let n = 1500;
        assert_eq!(activation_profile(0, n, fs), 0.0);
        assert_eq!(activation_profile(50, n, fs), 0.0, "lead-in rest");
        assert_eq!(activation_profile(500, n, fs), 1.0, "hold");
        assert_eq!(activation_profile(n - 1, n, fs), 0.0, "released");
        let mid_ramp = activation_profile(160, n, fs);
        assert!(mid_ramp > 0.0 && mid_ramp < 1.0);
    }

    #[test]
    fn procedural_channels_stay_distinct_across_gestures() {
        let cfg = SynthConfig::paper().with_channels(64);
        let model = GestureModel::for_subject(&cfg, 0, 1);
        assert_eq!(model.pattern(1).len(), 64);
        let d: f64 = model
            .pattern(1)
            .iter()
            .zip(model.pattern(2))
            .skip(4)
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(d > 3.0, "procedural patterns must separate classes: {d}");
    }

    #[test]
    fn subjects_share_structure_but_differ() {
        let cfg = SynthConfig::paper();
        let a = GestureModel::for_subject(&cfg, 0, 9);
        let b = GestureModel::for_subject(&cfg, 1, 9);
        // Same dominant channel for "closed hand" (structure preserved)…
        let argmax = |p: &[f64]| {
            p.iter()
                .enumerate()
                .max_by(|x, y| x.1.total_cmp(y.1))
                .unwrap()
                .0
        };
        assert_eq!(argmax(a.pattern(1)), argmax(b.pattern(1)));
        // …but not identical values.
        assert_ne!(a.pattern(1), b.pattern(1));
    }
}
