//! # `emg` — synthetic surface-EMG workload
//!
//! A deterministic, seedable substitute for the recorded 5-subject EMG
//! hand-gesture dataset the PULP-HD paper evaluates on: four (up to 256)
//! forearm channels sampled at 500 Hz, five classes (closed hand, open
//! hand, 2-finger pinch, point index, rest), 3-second trials repeated ten
//! times, corrupted by mains interference and sensor noise.
//!
//! The crate covers the full front end of the paper's system:
//! signal synthesis ([`synth`]), the preprocessing that the paper runs
//! *off*-accelerator (50 Hz notch + envelope extraction, [`filters`]),
//! ADC quantization, windowing and train/test splitting ([`dataset`]).
//!
//! ## Example
//!
//! ```
//! use emg::{Dataset, SynthConfig};
//!
//! let cfg = SynthConfig::paper();
//! let subject0 = Dataset::generate(&cfg, 0, 42);
//! // 5 classes × 10 repetitions of 3 s at 500 Hz.
//! assert_eq!(subject0.trials().len(), 50);
//!
//! // 10 ms windows (5 samples) feed the HD classifier…
//! let windows = subject0.windows(5);
//! assert_eq!(windows[0].codes[0].len(), 4);
//! // …and their per-channel mean envelopes feed the SVM baseline.
//! let features = windows[0].features();
//! assert_eq!(features.len(), 4);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dataset;
pub mod filters;
pub mod synth;

pub use dataset::{Dataset, Trial, Window};
pub use filters::{Biquad, Envelope};
pub use synth::{synthesize_trial, GestureModel, SynthConfig, GESTURE_NAMES};
