//! Dataset assembly: preprocessing, ADC quantization, windowing, and
//! train/test splits.
//!
//! A [`Dataset`] holds the preprocessed trials of one subject. The
//! preprocessing chain (50 Hz notch → rectification → low-pass envelope)
//! mirrors the paper's front end and — exactly as in the paper — is *not*
//! part of the accelerated processing chain; the classifiers consume the
//! resulting envelope samples, quantized to 16-bit ADC codes spanning the
//! 0–21 mV range of the CIM.

use crate::filters::{Biquad, Envelope};
use crate::synth::{synthesize_trial, GestureModel, SynthConfig};
use hdc::rng::{derive_seed, Xoshiro256PlusPlus};

/// One preprocessed gesture trial.
#[derive(Debug, Clone, PartialEq)]
pub struct Trial {
    /// Class label (0 = rest).
    pub label: usize,
    /// Envelope samples in ADC codes, `samples × channels`.
    pub codes: Vec<Vec<u16>>,
}

/// A subject's preprocessed dataset.
///
/// # Examples
///
/// ```
/// use emg::{Dataset, SynthConfig};
///
/// let cfg = SynthConfig::paper();
/// let data = Dataset::generate(&cfg, 0, 42);
/// assert_eq!(data.trials().len(), 5 * 10);
/// let windows = data.windows(5);
/// assert!(windows.len() > 1000);
/// assert_eq!(windows[0].codes.len(), 5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    channels: usize,
    classes: usize,
    fs_hz: f64,
    trials: Vec<Trial>,
}

/// One classification window: `window × channels` ADC codes plus its
/// ground-truth label.
#[derive(Debug, Clone, PartialEq)]
pub struct Window {
    /// Envelope codes, `window_len × channels`.
    pub codes: Vec<Vec<u16>>,
    /// Ground-truth class.
    pub label: usize,
}

impl Window {
    /// Mean envelope code per channel — the feature vector the SVM
    /// baseline consumes (the paper's SVM uses one feature per channel).
    #[must_use]
    pub fn features(&self) -> Vec<f64> {
        let channels = self.codes[0].len();
        let mut f = vec![0.0; channels];
        for sample in &self.codes {
            for (acc, &c) in f.iter_mut().zip(sample.iter()) {
                *acc += f64::from(c);
            }
        }
        let n = self.codes.len() as f64;
        for acc in &mut f {
            *acc /= n * f64::from(u16::MAX);
        }
        f
    }
}

impl Dataset {
    /// Synthesizes and preprocesses all trials of one subject.
    ///
    /// Trials are generated for every `(class, repetition)` pair; the
    /// onset/release transients stay in the data (they are part of what
    /// makes the task realistic — windows over transitions are
    /// genuinely ambiguous).
    #[must_use]
    pub fn generate(cfg: &SynthConfig, subject: usize, master_seed: u64) -> Self {
        let model = GestureModel::for_subject(cfg, subject, master_seed);
        let notch = Biquad::notch(cfg.fs_hz, 50.0, 8.0);
        let mut trials = Vec::with_capacity(cfg.classes * cfg.reps);
        for class in 0..cfg.classes {
            for rep in 0..cfg.reps {
                let trial_seed = derive_seed(
                    master_seed,
                    0x0114_0000 | ((subject as u64) << 24) | ((class as u64) << 8) | rep as u64,
                );
                let raw = synthesize_trial(cfg, &model, class, trial_seed);
                let codes = preprocess(cfg, &notch, &raw, trial_seed ^ 0xA27F);
                trials.push(Trial {
                    label: class,
                    codes,
                });
            }
        }
        Self {
            channels: cfg.channels,
            classes: cfg.classes,
            fs_hz: cfg.fs_hz,
            trials,
        }
    }

    /// Number of channels.
    #[must_use]
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Number of classes.
    #[must_use]
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Sampling rate in Hz.
    #[must_use]
    pub fn fs_hz(&self) -> f64 {
        self.fs_hz
    }

    /// All trials.
    #[must_use]
    pub fn trials(&self) -> &[Trial] {
        &self.trials
    }

    /// Cuts every trial into non-overlapping windows of `window_len`
    /// samples.
    ///
    /// # Panics
    ///
    /// Panics if `window_len == 0`.
    #[must_use]
    pub fn windows(&self, window_len: usize) -> Vec<Window> {
        self.windows_strided(window_len, window_len)
    }

    /// Cuts every trial into windows of `window_len` samples advancing by
    /// `stride`.
    ///
    /// # Panics
    ///
    /// Panics if `window_len == 0` or `stride == 0`.
    #[must_use]
    pub fn windows_strided(&self, window_len: usize, stride: usize) -> Vec<Window> {
        assert!(window_len > 0, "window length must be positive");
        assert!(stride > 0, "stride must be positive");
        let mut out = Vec::new();
        for trial in &self.trials {
            let mut start = 0;
            while start + window_len <= trial.codes.len() {
                out.push(Window {
                    codes: trial.codes[start..start + window_len].to_vec(),
                    label: trial.label,
                });
                start += stride;
            }
        }
        out
    }

    /// Stratified training subset: the paper trains on 25 % of the data
    /// and tests on the entire set. Returns the trial indices of the
    /// first `ceil(frac·reps)` repetitions of every class.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < frac <= 1`.
    #[must_use]
    pub fn training_trial_indices(&self, frac: f64) -> Vec<usize> {
        assert!(frac > 0.0 && frac <= 1.0, "fraction must be in (0, 1]");
        let mut per_class_total = vec![0usize; self.classes];
        for t in &self.trials {
            per_class_total[t.label] += 1;
        }
        let mut taken = vec![0usize; self.classes];
        let mut idx = Vec::new();
        for (i, t) in self.trials.iter().enumerate() {
            let quota = (per_class_total[t.label] as f64 * frac).ceil() as usize;
            if taken[t.label] < quota {
                taken[t.label] += 1;
                idx.push(i);
            }
        }
        idx
    }

    /// Windows of the given trials only.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range or `window_len == 0`.
    #[must_use]
    pub fn windows_of(&self, trial_indices: &[usize], window_len: usize) -> Vec<Window> {
        assert!(window_len > 0, "window length must be positive");
        let mut out = Vec::new();
        for &i in trial_indices {
            let trial = &self.trials[i];
            let mut start = 0;
            while start + window_len <= trial.codes.len() {
                out.push(Window {
                    codes: trial.codes[start..start + window_len].to_vec(),
                    label: trial.label,
                });
                start += window_len;
            }
        }
        out
    }
}

/// Notch → envelope → ADC quantization → artifact injection for one
/// trial.
fn preprocess(
    cfg: &SynthConfig,
    notch: &Biquad,
    raw: &[Vec<f64>],
    artifact_seed: u64,
) -> Vec<Vec<u16>> {
    let channels = cfg.channels;
    let mut notches = vec![*notch; channels];
    let mut envelopes = vec![Envelope::new(cfg.fs_hz, 3.0); channels];
    for f in &mut notches {
        f.reset();
    }
    let mut artifacts = Xoshiro256PlusPlus::seed_from_u64(artifact_seed);
    // Remaining flatline samples per channel (electrode lift-off burst).
    let mut dropout = vec![0usize; channels];
    let scale = f64::from(u16::MAX) / cfg.max_mvc_mv;
    raw.iter()
        .map(|sample| {
            sample
                .iter()
                .enumerate()
                .map(|(c, &x)| {
                    let cleaned = notches[c].process(x);
                    let env = envelopes[c].process(cleaned);
                    let code = (env * scale).clamp(0.0, f64::from(u16::MAX)) as u16;
                    if dropout[c] == 0 && artifacts.next_f64() < cfg.artifact_prob {
                        dropout[c] = 2 + (artifacts.next_u32() % 4) as usize;
                    }
                    if dropout[c] > 0 {
                        dropout[c] -= 1;
                        (artifacts.next_u32() % 300) as u16 // flatlined
                    } else {
                        code
                    }
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> SynthConfig {
        SynthConfig {
            reps: 3,
            trial_secs: 1.5,
            ..SynthConfig::paper()
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = small_cfg();
        let a = Dataset::generate(&cfg, 0, 7);
        let b = Dataset::generate(&cfg, 0, 7);
        assert_eq!(a, b);
        let c = Dataset::generate(&cfg, 1, 7);
        assert_ne!(a, c, "different subject differs");
    }

    #[test]
    fn trial_count_and_labels() {
        let cfg = small_cfg();
        let data = Dataset::generate(&cfg, 0, 7);
        assert_eq!(data.trials().len(), 15);
        for class in 0..5 {
            assert_eq!(data.trials().iter().filter(|t| t.label == class).count(), 3);
        }
    }

    #[test]
    fn codes_use_reasonable_dynamic_range() {
        let cfg = small_cfg();
        let data = Dataset::generate(&cfg, 0, 7);
        let mut max_code = 0u16;
        for t in data.trials() {
            for s in &t.codes {
                for &c in s {
                    max_code = max_code.max(c);
                }
            }
        }
        // Strong contractions should reach well into the upper half of
        // the 0–21 mV range without pegging at full scale constantly.
        assert!(max_code > 30_000, "max code only {max_code}");
    }

    #[test]
    fn envelope_separates_classes_in_hold_phase() {
        let cfg = small_cfg();
        let data = Dataset::generate(&cfg, 0, 7);
        // Mean hold-phase envelope per class on channel 0: closed hand
        // (class 1) must dominate rest (class 0).
        let hold_mean = |label: usize| {
            let trials: Vec<_> = data.trials().iter().filter(|t| t.label == label).collect();
            let mut acc = 0.0;
            let mut n = 0.0;
            for t in &trials {
                let len = t.codes.len();
                for s in &t.codes[len / 3..2 * len / 3] {
                    acc += f64::from(s[0]);
                    n += 1.0;
                }
            }
            acc / n
        };
        assert!(hold_mean(1) > 3.0 * hold_mean(0));
    }

    #[test]
    fn windows_have_correct_shape_and_cover_trials() {
        let cfg = small_cfg();
        let data = Dataset::generate(&cfg, 0, 7);
        let windows = data.windows(5);
        let samples = cfg.samples_per_trial();
        assert_eq!(windows.len(), 15 * (samples / 5));
        assert!(windows.iter().all(|w| w.codes.len() == 5));
        assert!(windows.iter().all(|w| w.codes[0].len() == 4));
    }

    #[test]
    fn strided_windows_overlap() {
        let cfg = small_cfg();
        let data = Dataset::generate(&cfg, 0, 7);
        let dense = data.windows_strided(10, 5);
        let sparse = data.windows(10);
        assert!(dense.len() > sparse.len() * 3 / 2);
    }

    #[test]
    fn training_split_is_stratified_quarter() {
        let cfg = SynthConfig::paper(); // 10 reps
        let data = Dataset::generate(&cfg, 0, 7);
        let idx = data.training_trial_indices(0.25);
        // ceil(10 × 0.25) = 3 trials per class.
        assert_eq!(idx.len(), 15);
        for class in 0..5 {
            let count = idx
                .iter()
                .filter(|&&i| data.trials()[i].label == class)
                .count();
            assert_eq!(count, 3, "class {class}");
        }
    }

    #[test]
    fn window_features_track_activation() {
        let cfg = small_cfg();
        let data = Dataset::generate(&cfg, 0, 7);
        let windows = data.windows(25);
        let rest_energy: f64 = windows
            .iter()
            .filter(|w| w.label == 0)
            .map(|w| w.features().iter().sum::<f64>())
            .sum::<f64>()
            / windows.iter().filter(|w| w.label == 0).count() as f64;
        let fist_energy: f64 = windows
            .iter()
            .filter(|w| w.label == 1)
            .map(|w| w.features().iter().sum::<f64>())
            .sum::<f64>()
            / windows.iter().filter(|w| w.label == 1).count() as f64;
        assert!(fist_energy > 2.0 * rest_energy);
    }

    #[test]
    fn features_are_normalized() {
        let cfg = small_cfg();
        let data = Dataset::generate(&cfg, 0, 7);
        for w in data.windows(5).iter().take(200) {
            for f in w.features() {
                assert!((0.0..=1.0).contains(&f));
            }
        }
    }
}
